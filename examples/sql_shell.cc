// Interactive SQL shell over CSV files.
//
//   $ ./sql_shell data1.csv data2.csv ...
//   gsopt> SELECT * FROM data1 LEFT JOIN data2 ON data1.k = data2.k
//   gsopt> \explain SELECT ...
//   gsopt> \plans  SELECT ...        (enumerate the full plan space)
//   gsopt> \tables
//   gsopt> \q
//
// Each CSV becomes a table named after its basename (without extension).
// Every query is optimized (simplify -> normalize -> hypergraph ->
// enumerate -> cost) before execution.
#include <cstdio>
#include <iostream>
#include <string>

#include "algebra/execute.h"
#include "algebra/explain.h"
#include "core/optimizer.h"
#include "relational/csv.h"
#include "sql/binder.h"

using namespace gsopt;  // NOLINT: example brevity

namespace {

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

void RunQuery(const std::string& text, const Catalog& cat, bool explain,
              bool show_plans) {
  auto tree = sql::ParseAndBind(text, cat);
  if (!tree.ok()) {
    std::printf("error: %s\n", tree.status().ToString().c_str());
    return;
  }
  QueryOptimizer opt(cat);
  if (show_plans) {
    OptimizeOptions oo;
    oo.prune = false;
    auto plans = opt.EnumerateFullPlans(*tree, oo);
    if (!plans.ok()) {
      std::printf("error: %s\n", plans.status().ToString().c_str());
      return;
    }
    std::printf("%zu plans:\n", plans->size());
    for (const PlanInfo& p : *plans) {
      std::printf("  cost=%-12.0f %s\n", p.cost, p.expr->ToString().c_str());
    }
    return;
  }
  auto result = opt.Optimize(*tree);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (explain) {
    std::printf("%zu plans considered; chosen (cost %.0f, as-written %.0f):\n",
                result->plans_considered, result->best.cost,
                result->original_cost);
    std::printf("%s", Explain(result->best.expr, opt.cost_model()).c_str());
    return;
  }
  auto rel = Execute(result->best.expr, cat);
  if (!rel.ok()) {
    std::printf("error: %s\n", rel.status().ToString().c_str());
    return;
  }
  std::printf("%s", ToCsv(*rel).c_str());
  std::printf("(%d rows)\n", rel->NumRows());
}

}  // namespace

int main(int argc, char** argv) {
  Catalog cat;
  for (int i = 1; i < argc; ++i) {
    std::string table = BaseName(argv[i]);
    Status st = LoadCsvFile(argv[i], table, &cat);
    if (!st.ok()) {
      std::printf("failed to load %s: %s\n", argv[i], st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s as table '%s' (%d rows)\n", argv[i], table.c_str(),
                cat.Find(table)->NumRows());
  }
  if (argc < 2) {
    std::printf("usage: sql_shell <file.csv> [more.csv ...]\n");
    return 1;
  }

  std::string line;
  std::printf("gsopt> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\q" || line == "quit" || line == "exit") break;
    if (line == "\\tables") {
      for (const std::string& t : cat.TableNames()) {
        const Relation* r = cat.Find(t);
        std::printf("  %s %s (%d rows)\n", t.c_str(),
                    r->schema().ToString().c_str(), r->NumRows());
      }
    } else if (line.rfind("\\explain ", 0) == 0) {
      RunQuery(line.substr(9), cat, /*explain=*/true, /*show_plans=*/false);
    } else if (line.rfind("\\plans ", 0) == 0) {
      RunQuery(line.substr(7), cat, /*explain=*/false, /*show_plans=*/true);
    } else if (!line.empty()) {
      RunQuery(line, cat, /*explain=*/false, /*show_plans=*/false);
    }
    std::printf("gsopt> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
