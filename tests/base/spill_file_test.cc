// SpillFile: the RAII temp-file primitive under the out-of-core path.
// Round-trips bytes through the write buffer, enforces the
// unlink-on-destruction contract (LiveCount is the process-wide leak
// oracle), reports truncated reads as kInternal, and surfaces injected
// spill-I/O faults with the right status taxonomy.
#include "base/spill_file.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "base/fault_injector.h"

namespace gsopt {
namespace {

bool PathExists(const std::string& p) {
  struct stat st;
  return ::stat(p.c_str(), &st) == 0;
}

TEST(SpillFileTest, RoundTripsBytesAcrossBufferBoundary) {
  auto f = SpillFile::Create("", nullptr);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  // Three appends totalling > kBufferBytes so at least one internal flush
  // happens mid-write.
  std::string a(SpillFile::kBufferBytes - 7, 'a');
  std::string b(SpillFile::kBufferBytes, 'b');
  std::string c = "tail";
  ASSERT_TRUE(f->Append(a.data(), a.size()).ok());
  ASSERT_TRUE(f->Append(b.data(), b.size()).ok());
  ASSERT_TRUE(f->Append(c.data(), c.size()).ok());
  EXPECT_EQ(f->bytes_written(), a.size() + b.size() + c.size());

  ASSERT_TRUE(f->Rewind().ok());
  std::string back(a.size() + b.size() + c.size(), '\0');
  ASSERT_TRUE(f->ReadExact(back.data(), back.size()).ok());
  EXPECT_EQ(back, a + b + c);
  EXPECT_EQ(f->bytes_read(), back.size());
}

TEST(SpillFileTest, TruncatedReadIsInternalNotCrash) {
  auto f = SpillFile::Create("", nullptr);
  ASSERT_TRUE(f.ok());
  const char payload[] = "short";
  ASSERT_TRUE(f->Append(payload, sizeof payload).ok());
  ASSERT_TRUE(f->Rewind().ok());
  char buf[64];
  Status s = f->ReadExact(buf, sizeof buf);  // asks for more than written
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(SpillFileTest, DestructorUnlinksAndLiveCountReturnsToZero) {
  int64_t before = SpillFile::LiveCount();
  std::string path;
  {
    auto f = SpillFile::Create("", nullptr);
    ASSERT_TRUE(f.ok());
    path = f->path();
    ASSERT_TRUE(f->Append("x", 1).ok());
    ASSERT_TRUE(f->Flush().ok());
    EXPECT_EQ(SpillFile::LiveCount(), before + 1);
    EXPECT_TRUE(PathExists(path));
  }
  EXPECT_EQ(SpillFile::LiveCount(), before);
  EXPECT_FALSE(PathExists(path));
}

TEST(SpillFileTest, DiscardIsIdempotentAndMoveTransfersOwnership) {
  int64_t before = SpillFile::LiveCount();
  auto f = SpillFile::Create("", nullptr);
  ASSERT_TRUE(f.ok());
  std::string path = f->path();
  SpillFile moved = std::move(*f);
  EXPECT_EQ(SpillFile::LiveCount(), before + 1);  // one file, not two
  moved.Discard();
  EXPECT_FALSE(PathExists(path));
  EXPECT_EQ(SpillFile::LiveCount(), before);
  moved.Discard();  // idempotent
  EXPECT_EQ(SpillFile::LiveCount(), before);
}

TEST(SpillFileTest, CreateInMissingDirectoryFailsCleanly) {
  auto f = SpillFile::Create("/nonexistent-gsopt-spill-dir", nullptr);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInternal);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
}

TEST(SpillFileTest, InjectedOpenFaultIsResourceExhausted) {
  FaultInjector::Options o;
  o.seed = 42;
  o.period = 1;
  o.site_mask = FaultInjector::MaskOf({FaultSite::kSpillOpen});
  FaultInjector fi(o);
  auto f = SpillFile::Create("", &fi);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(f.status().message().find("injected"), std::string::npos);
  EXPECT_EQ(SpillFile::LiveCount(), 0);  // the failed create leaked nothing
}

TEST(SpillFileTest, InjectedWriteFaultSurfacesOnAppendOrFlush) {
  FaultInjector::Options o;
  o.seed = 7;
  o.period = 1;
  o.max_faults = 1;  // create succeeds, first write probe fires
  o.site_mask = FaultInjector::MaskOf({FaultSite::kSpillWrite});
  FaultInjector fi(o);
  auto f = SpillFile::Create("", &fi);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  std::string big(SpillFile::kBufferBytes * 2, 'z');
  Status s = f->Append(big.data(), big.size());
  if (s.ok()) s = f->Flush();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.code() == StatusCode::kResourceExhausted ||
              s.code() == StatusCode::kUnavailable)
      << s.ToString();
}

TEST(SpillFileTest, InjectedReadFaultIsTransient) {
  FaultInjector::Options o;
  o.seed = 9;
  o.period = 1;
  o.site_mask = FaultInjector::MaskOf({FaultSite::kSpillRead});
  FaultInjector fi(o);
  auto f = SpillFile::Create("", &fi);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Append("abc", 3).ok());
  ASSERT_TRUE(f->Rewind().ok());
  char buf[3];
  Status s = f->ReadExact(buf, sizeof buf);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(s.IsTransient());
}

}  // namespace
}  // namespace gsopt
