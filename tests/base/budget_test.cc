// ResourceBudget: deadline stickiness, strided probing, row/plan caps.
#include "base/budget.h"

#include <gtest/gtest.h>

#include <chrono>

namespace gsopt {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(ResourceBudgetTest, UnlimitedBudgetNeverExhausts) {
  ResourceBudget b = ResourceBudget::Unlimited();
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(b.CheckDeadline("t").ok());
  }
  EXPECT_TRUE(b.CheckDeadlineNow("t").ok());
  EXPECT_TRUE(b.ChargeRows(1u << 20, "t").ok());
  EXPECT_EQ(b.PlansRemaining(), ResourceBudget::kUnlimited);
  EXPECT_EQ(b.RemainingTime(), microseconds::max());
}

TEST(ResourceBudgetTest, PastDeadlineExhaustsWithStageInMessage) {
  ResourceBudget b;
  b.WithDeadline(ResourceBudget::Clock::now() - milliseconds(1));
  Status s = b.CheckDeadlineNow("enumerate");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("enumerate"), std::string::npos);
  EXPECT_EQ(b.RemainingTime(), microseconds(0));
}

TEST(ResourceBudgetTest, ExpiryIsSticky) {
  ResourceBudget b;
  b.WithDeadline(ResourceBudget::Clock::now() - milliseconds(1));
  EXPECT_FALSE(b.CheckDeadlineNow("first").ok());
  // Every later probe fails immediately -- including strided ones on ticks
  // that would otherwise skip the clock read.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(b.CheckDeadline("later").code(),
              StatusCode::kResourceExhausted);
  }
}

TEST(ResourceBudgetTest, StridedProbeDetectsExpiryWithinOneStride) {
  ResourceBudget b;
  b.WithDeadline(ResourceBudget::Clock::now() - milliseconds(1));
  bool exhausted = false;
  for (uint64_t i = 0; i <= ResourceBudget::kClockStride && !exhausted;
       ++i) {
    exhausted = !b.CheckDeadline("loop").ok();
  }
  EXPECT_TRUE(exhausted);
}

TEST(ResourceBudgetTest, FarDeadlineStaysOk) {
  ResourceBudget b;
  b.WithDeadlineAfter(std::chrono::hours(1));
  EXPECT_TRUE(b.CheckDeadlineNow("t").ok());
  EXPECT_GT(b.RemainingTime(), microseconds(0));
}

TEST(ResourceBudgetTest, RowCapCharges) {
  ResourceBudget b;
  b.WithMaxRows(10);
  EXPECT_TRUE(b.ChargeRows(6, "join").ok());
  EXPECT_TRUE(b.ChargeRows(4, "join").ok());  // exactly at the cap
  Status s = b.ChargeRows(1, "join");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // The message names the tripped cap and both sides of the comparison.
  EXPECT_NE(s.message().find("row cap exceeded"), std::string::npos);
  EXPECT_NE(s.message().find("11 > 10"), std::string::npos);
  EXPECT_EQ(b.rows_charged(), 11u);
  b.ResetRows();
  EXPECT_TRUE(b.ChargeRows(10, "join").ok());
}

TEST(ResourceBudgetTest, PlanAccountingIsAdvisory) {
  ResourceBudget b;
  b.WithMaxPlans(100);
  EXPECT_EQ(b.PlansRemaining(), 100u);
  b.AddPlans(40);
  EXPECT_EQ(b.PlansRemaining(), 60u);
  b.AddPlans(100);
  EXPECT_EQ(b.PlansRemaining(), 0u);
  EXPECT_EQ(b.plans_charged(), 140u);
  b.ResetPlans();
  EXPECT_EQ(b.PlansRemaining(), 100u);
}

TEST(StatusTest, ResourceExhaustedCodeName) {
  Status s = Status::ResourceExhausted("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: boom");
}

}  // namespace
}  // namespace gsopt
