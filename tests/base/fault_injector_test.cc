#include "base/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace gsopt {
namespace {

TEST(FaultInjectorTest, DisabledNeverFires) {
  FaultInjector fi;  // default options: period 0
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(fi.MaybeFail(FaultSite::kAlloc, "test").ok());
  }
  EXPECT_EQ(fi.fired_total(), 0u);
  EXPECT_EQ(fi.probes(FaultSite::kAlloc), 1000u);
}

TEST(FaultInjectorTest, PeriodOneFiresEveryProbe) {
  FaultInjector::Options o;
  o.seed = 7;
  o.period = 1;
  FaultInjector fi(o);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fi.MaybeFail(FaultSite::kAlloc, "test").ok());
  }
  EXPECT_EQ(fi.fired(FaultSite::kAlloc), 10u);
}

TEST(FaultInjectorTest, ScheduleIsDeterministicInSeed) {
  auto schedule = [](uint64_t seed) {
    FaultInjector::Options o;
    o.seed = seed;
    o.period = 5;
    FaultInjector fi(o);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!fi.MaybeFail(FaultSite::kSpillWrite, "test").ok());
    }
    return fired;
  };
  EXPECT_EQ(schedule(123), schedule(123));
  EXPECT_NE(schedule(123), schedule(124));
}

TEST(FaultInjectorTest, PeriodRoughlyControlsRate) {
  FaultInjector::Options o;
  o.seed = 99;
  o.period = 10;
  FaultInjector fi(o);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!fi.MaybeFail(FaultSite::kBudgetCheck, "test").ok()) ++fired;
  }
  // ~100 expected; allow generous slack, the draw is hash-based.
  EXPECT_GT(fired, 30);
  EXPECT_LT(fired, 300);
}

TEST(FaultInjectorTest, SiteMaskRestrictsFiring) {
  FaultInjector::Options o;
  o.seed = 1;
  o.period = 1;
  o.site_mask = FaultInjector::MaskOf({FaultSite::kSpillRead});
  FaultInjector fi(o);
  EXPECT_TRUE(fi.MaybeFail(FaultSite::kAlloc, "test").ok());
  EXPECT_TRUE(fi.MaybeFail(FaultSite::kDispatch, "test").ok());
  EXPECT_FALSE(fi.MaybeFail(FaultSite::kSpillRead, "test").ok());
}

TEST(FaultInjectorTest, MaxFaultsBoundsTotalFires) {
  FaultInjector::Options o;
  o.seed = 5;
  o.period = 1;
  o.max_faults = 3;
  FaultInjector fi(o);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (!fi.MaybeFail(FaultSite::kAlloc, "test").ok()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fi.fired_total(), 3u);
}

TEST(FaultInjectorTest, StatusTaxonomyMatchesSites) {
  FaultInjector::Options o;
  o.seed = 11;
  o.period = 1;
  FaultInjector fi(o);
  // Persistent conditions: resource exhaustion (never retried).
  Status alloc = fi.MaybeFail(FaultSite::kAlloc, "t");
  EXPECT_EQ(alloc.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(alloc.IsTransient());
  Status open = fi.MaybeFail(FaultSite::kSpillOpen, "t");
  EXPECT_EQ(open.code(), StatusCode::kResourceExhausted);
  Status budget = fi.MaybeFail(FaultSite::kBudgetCheck, "t");
  EXPECT_EQ(budget.code(), StatusCode::kResourceExhausted);
  // Transient conditions: unavailable (Session retry-eligible).
  Status read = fi.MaybeFail(FaultSite::kSpillRead, "t");
  EXPECT_EQ(read.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(read.IsTransient());
  Status dispatch = fi.MaybeFail(FaultSite::kDispatch, "t");
  EXPECT_EQ(dispatch.code(), StatusCode::kUnavailable);
  // Write faults alternate between ENOSPC-class and short-write, but are
  // always one of the two typed classes.
  for (int i = 0; i < 20; ++i) {
    Status w = fi.MaybeFail(FaultSite::kSpillWrite, "t");
    EXPECT_TRUE(w.code() == StatusCode::kResourceExhausted ||
                w.code() == StatusCode::kUnavailable)
        << w.ToString();
  }
}

TEST(FaultInjectorTest, MessagesAreMarkedInjectedAndLocated) {
  FaultInjector::Options o;
  o.seed = 3;
  o.period = 1;
  FaultInjector fi(o);
  Status s = fi.MaybeFail(FaultSite::kAlloc, "join-build");
  EXPECT_NE(s.message().find("injected"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("join-build"), std::string::npos) << s.ToString();
}

TEST(FaultInjectorTest, SiteNamesAreDistinct) {
  for (uint32_t i = 0; i < static_cast<uint32_t>(FaultSite::kNumSites); ++i) {
    for (uint32_t j = i + 1; j < static_cast<uint32_t>(FaultSite::kNumSites);
         ++j) {
      EXPECT_STRNE(FaultSiteName(static_cast<FaultSite>(i)),
                   FaultSiteName(static_cast<FaultSite>(j)));
    }
  }
}

}  // namespace
}  // namespace gsopt
