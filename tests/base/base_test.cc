#include <gtest/gtest.h>

#include "base/relset.h"
#include "base/rng.h"
#include "base/status.h"

namespace gsopt {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(err.ToString().find("bad thing"), std::string::npos);
}

TEST(StatusOrTest, ValueAndStatusAccess) {
  StatusOr<int> v = 42;
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::NotFound("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Halve(int x) {
  if (x % 2) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  GSOPT_ASSIGN_OR_RETURN(int h, Halve(x));
  GSOPT_ASSIGN_OR_RETURN(int q, Halve(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnComposesAndPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // inner Halve(3) fails
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(RelSetTest, BasicSetAlgebra) {
  RelSet a{0, 2, 5};
  RelSet b{2, 3};
  EXPECT_TRUE(a.Contains(2));
  EXPECT_FALSE(a.Contains(1));
  EXPECT_EQ(a.Count(), 3);
  EXPECT_EQ(a.Union(b).Count(), 4);
  EXPECT_EQ(a.Intersect(b), RelSet({2}));
  EXPECT_EQ(a.Minus(b), RelSet({0, 5}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(RelSet({1, 4})));
  EXPECT_TRUE(a.ContainsAll(RelSet({0, 5})));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(RelSetTest, FirstNAndIteration) {
  RelSet s = RelSet::FirstN(4);
  EXPECT_EQ(s.Count(), 4);
  EXPECT_EQ(s.First(), 0);
  auto v = RelSet({3, 1, 7}).ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 7);
  EXPECT_EQ(RelSet({1, 3}).ToString(), "{1,3}");
}

TEST(RelSetTest, EmptyBehaviour) {
  RelSet e;
  EXPECT_TRUE(e.Empty());
  EXPECT_EQ(e.Count(), 0);
  EXPECT_TRUE(e.ToVector().empty());
  RelSet s{4};
  s.Remove(4);
  EXPECT_TRUE(s.Empty());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(Rng(123).Next64(), c.Next64());
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  // Degenerate range.
  EXPECT_EQ(rng.Uniform(9, 9), 9);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_GT(hits, 2100);
  EXPECT_LT(hits, 2900);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace gsopt
