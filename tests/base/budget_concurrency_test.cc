// Concurrency tests for ResourceBudget's thread-safe probes: N threads
// charging rows and ticking the deadline simultaneously must account for
// every row exactly once, admit exactly max_rows charges before the cap
// trips, and observe expiry stickily across threads. Run under TSAN in CI
// (GSOPT_SANITIZE=thread) to also prove data-race freedom.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/budget.h"

namespace gsopt {
namespace {

constexpr int kThreads = 8;
constexpr uint64_t kChargesPerThread = 10000;

TEST(BudgetConcurrencyTest, EveryRowChargedExactlyOnce) {
  ResourceBudget budget;  // unlimited: every charge succeeds
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (uint64_t i = 0; i < kChargesPerThread; ++i) {
        ASSERT_TRUE(budget.ChargeRows(1, "test").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.rows_charged(), kThreads * kChargesPerThread);
}

TEST(BudgetConcurrencyTest, RowCapAdmitsExactlyMaxRowsAcrossThreads) {
  constexpr uint64_t kMax = 12345;
  ResourceBudget budget;
  budget.WithMaxRows(kMax);
  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kChargesPerThread; ++i) {
        if (budget.ChargeRows(1, "test").ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The single fetch_add per charge makes admission exact: the first kMax
  // single-row charges observe after <= kMax and succeed, every later
  // charge observes after > kMax and fails. No row is lost or
  // double-counted.
  EXPECT_EQ(successes.load(), kMax);
  EXPECT_EQ(failures.load(), kThreads * kChargesPerThread - kMax);
  EXPECT_EQ(budget.rows_charged(), kThreads * kChargesPerThread);
}

TEST(BudgetConcurrencyTest, DeadlineProbesCountedExactlyOnce) {
  ResourceBudget budget;
  budget.WithDeadlineAfter(std::chrono::hours(1));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (uint64_t i = 0; i < kChargesPerThread; ++i) {
        ASSERT_TRUE(budget.CheckDeadline("test").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.deadline_checks(), kThreads * kChargesPerThread);
}

TEST(BudgetConcurrencyTest, ExpiryIsStickyAcrossThreads) {
  ResourceBudget budget;
  budget.WithDeadline(ResourceBudget::Clock::now());  // already expired
  // Force the expiry to be observed once, then hammer from all threads:
  // every probe must fail without ever flipping back.
  ASSERT_FALSE(budget.CheckDeadlineNow("test").ok());
  std::atomic<uint64_t> ok_probes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < 1000; ++i) {
        if (budget.CheckDeadline("test").ok()) {
          ok_probes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_probes.load(), 0u);
}

TEST(BudgetConcurrencyTest, BulkChargesAccountExactly) {
  ResourceBudget budget;
  budget.WithMaxRows(ResourceBudget::kUnlimited);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget, t] {
      // Varied charge sizes per thread: totals must still be exact.
      for (uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(budget.ChargeRows(static_cast<uint64_t>(t) + 1, "test")
                        .ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += (static_cast<uint64_t>(t) + 1) * 1000;
  }
  EXPECT_EQ(budget.rows_charged(), expected);
}

}  // namespace
}  // namespace gsopt
