// ThreadPool unit tests: every index in [0, n) is visited exactly once,
// odd morsel boundaries are handled, nested ParallelFor degrades to inline
// execution instead of deadlocking, and completion is a synchronization
// point (lane writes are visible after return).
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"

namespace gsopt {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t n : {0, 1, 6, 7, 64, 1000, 1001}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, 7, [&](int /*lane*/, int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "n=" << n;
    }
  }
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1);
  int64_t sum = 0;
  pool.ParallelFor(100, 8, [&](int lane, int64_t begin, int64_t end) {
    EXPECT_EQ(lane, 0);
    sum += end - begin;  // no synchronization needed: inline on the caller
  });
  EXPECT_EQ(sum, 100);
}

TEST(ThreadPoolTest, SmallInputRunsInlineOnCaller) {
  ThreadPool pool(4);
  std::atomic<int64_t> covered{0};
  pool.ParallelFor(5, 16, [&](int lane, int64_t begin, int64_t end) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 5);
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 5);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  ThreadPool pool(4);
  std::atomic<int64_t> inner_total{0};
  pool.ParallelFor(64, 4, [&](int /*lane*/, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // The nested call must execute inline on this lane (t_busy guard),
      // not re-enter the job queue.
      pool.ParallelFor(3, 1, [&](int lane, int64_t b, int64_t e) {
        EXPECT_EQ(lane, 0);
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 64 * 3);
}

TEST(ThreadPoolTest, CompletionPublishesLaneWrites) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  // Plain (non-atomic) writes by lanes; the post-return read relies on
  // ParallelFor's fan-in being a synchronization point.
  std::vector<int64_t> out(static_cast<size_t>(kN), 0);
  pool.ParallelFor(kN, 13, [&](int /*lane*/, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[static_cast<size_t>(i)] = i;
  });
  int64_t sum = 0;
  for (int64_t v : out) sum += v;
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, BackToBackJobsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> covered{0};
    pool.ParallelFor(97, 5, [&](int /*lane*/, int64_t begin, int64_t end) {
      covered.fetch_add(end - begin);
    });
    ASSERT_EQ(covered.load(), 97) << "round " << round;
  }
}

}  // namespace
}  // namespace gsopt
