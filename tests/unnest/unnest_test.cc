// Experiment M3 (DESIGN.md): the paper's §1.1 join-aggregate queries --
// TIS ground truth vs the Query 2/3-style unnesting, including the
// doubly-nested COUNT query and the COUNT bug.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/datagen.h"
#include "unnest/nested_query.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

Catalog MakeCatalog(uint64_t seed, int rows, int domain,
                    double null_fraction = 0.1) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = domain;
  opt.null_fraction = null_fraction;
  AddRandomTables(3, opt, &rng, &cat);
  return cat;
}

// Single-level: SELECT r1.a FROM r1 WHERE r1.b θ1 (SELECT COUNT(*) FROM r2
// WHERE r2.c = r1.c)
NestedQuery SingleLevel(CmpOp theta1) {
  NestedQuery q;
  q.outer.table = "r1";
  q.outer.condition = CountCondition{Scalar::Column("r1", "b"), theta1};
  auto inner = std::make_shared<NestedBlock>();
  inner->table = "r2";
  inner->correlation = Predicate(MakeAtom("r2", "c", CmpOp::kEq, "r1", "c"));
  q.outer.nested = inner;
  q.select_cols = {Attribute{"r1", "a"}};
  return q;
}

// The paper's doubly-nested query.
NestedQuery DoubleLevel(CmpOp theta1, CmpOp theta2) {
  NestedQuery q;
  q.outer.table = "r1";
  q.outer.condition = CountCondition{Scalar::Column("r1", "b"), theta1};
  auto mid = std::make_shared<NestedBlock>();
  mid->table = "r2";
  mid->correlation = Predicate(MakeAtom("r2", "c", CmpOp::kEq, "r1", "c"));
  mid->condition = CountCondition{Scalar::Column("r2", "a"), theta2};
  auto inner = std::make_shared<NestedBlock>();
  inner->table = "r3";
  // Complex correlation: r2.b = r3.b AND r1.a = r3.a (references BOTH
  // ancestors, the paper's Query 2 shape).
  inner->correlation =
      Predicate({MakeAtom("r2", "b", CmpOp::kEq, "r3", "b"),
                 MakeAtom("r1", "a", CmpOp::kEq, "r3", "a")});
  mid->nested = inner;
  q.outer.nested = mid;
  q.select_cols = {Attribute{"r1", "a"}};
  return q;
}

TEST(UnnestTest, SingleLevelMatchesTis) {
  for (CmpOp theta : {CmpOp::kEq, CmpOp::kGe, CmpOp::kLt, CmpOp::kNe}) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      Catalog cat = MakeCatalog(seed, 10, 3);
      NestedQuery q = SingleLevel(theta);
      auto tis = ExecuteTis(q, cat);
      ASSERT_TRUE(tis.ok());
      auto tree = UnnestToAlgebra(q, cat);
      ASSERT_TRUE(tree.ok()) << tree.status().ToString();
      auto got = Execute(*tree, cat);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(Relation::BagEquals(*tis, *got))
          << "theta " << CmpOpName(theta) << " seed " << seed << "\n"
          << (*tree)->ToString();
    }
  }
}

TEST(UnnestTest, CountBugZeroCountsSurvive) {
  // The classic COUNT bug: outer rows with NO matching inner rows must
  // appear when θ1 compares favorably against zero. Build data where some
  // r1.c values never occur in r2.
  Catalog cat;
  GSOPT_CHECK(cat.CreateTable("r1", {"a", "b", "c"}).ok());
  GSOPT_CHECK(cat.CreateTable("r2", {"a", "b", "c"}).ok());
  GSOPT_CHECK(cat.CreateTable("r3", {"a", "b", "c"}).ok());
  // r1 row with c=99 has no r2 partner; its count is 0 and b=0 so the
  // condition r1.b = COUNT(*) holds.
  GSOPT_CHECK(cat.Insert("r1", {I(1), I(0), I(99)}).ok());
  GSOPT_CHECK(cat.Insert("r1", {I(2), I(1), I(5)}).ok());
  GSOPT_CHECK(cat.Insert("r2", {I(7), I(7), I(5)}).ok());

  NestedQuery q = SingleLevel(CmpOp::kEq);
  auto tis = ExecuteTis(q, cat);
  ASSERT_TRUE(tis.ok());
  EXPECT_EQ(tis->NumRows(), 2);  // both rows qualify (counts 0 and 1)
  auto tree = UnnestToAlgebra(q, cat);
  ASSERT_TRUE(tree.ok());
  auto got = Execute(*tree, cat);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(Relation::BagEquals(*tis, *got));
}

TEST(UnnestTest, DoubleLevelMatchesTisAcrossOperators) {
  for (CmpOp theta1 : {CmpOp::kGe, CmpOp::kNe}) {
    for (CmpOp theta2 : {CmpOp::kLt, CmpOp::kEq}) {
      for (uint64_t seed : {4ull, 5ull}) {
        Catalog cat = MakeCatalog(seed, 8, 3);
        NestedQuery q = DoubleLevel(theta1, theta2);
        auto tis = ExecuteTis(q, cat);
        ASSERT_TRUE(tis.ok());
        auto tree = UnnestToAlgebra(q, cat);
        ASSERT_TRUE(tree.ok());
        auto got = Execute(*tree, cat);
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(Relation::BagEquals(*tis, *got))
            << CmpOpName(theta1) << "/" << CmpOpName(theta2) << " seed "
            << seed << "\n" << (*tree)->ToString();
      }
    }
  }
}

TEST(UnnestTest, InnerLocalFiltersRespected) {
  Catalog cat = MakeCatalog(9, 10, 3);
  NestedQuery q = SingleLevel(CmpOp::kGe);
  q.outer.nested->local =
      Predicate(MakeConstAtom("r2", "a", CmpOp::kGe, I(1)));
  auto tis = ExecuteTis(q, cat);
  auto tree = UnnestToAlgebra(q, cat);
  ASSERT_TRUE(tis.ok());
  ASSERT_TRUE(tree.ok());
  auto got = Execute(*tree, cat);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(Relation::BagEquals(*tis, *got));
}

TEST(UnnestTest, UnnestedQueryIsOptimizableAndPlansStayCorrect) {
  // The unnested tree (with its complex correlation predicate) must feed
  // the optimizer, and every enumerated plan must match TIS.
  Catalog cat = MakeCatalog(11, 7, 3);
  NestedQuery q = DoubleLevel(CmpOp::kGe, CmpOp::kLt);
  auto tis = ExecuteTis(q, cat);
  ASSERT_TRUE(tis.ok());
  auto tree = UnnestToAlgebra(q, cat);
  ASSERT_TRUE(tree.ok());

  QueryOptimizer opt(cat);
  OptimizeOptions oo;
  oo.prune = false;
  auto plans = opt.EnumerateFullPlans(*tree, oo);
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  EXPECT_GE(plans->size(), 1u);
  for (const PlanInfo& p : *plans) {
    auto got = Execute(p.expr, cat);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(Relation::BagEquals(*tis, *got)) << p.expr->ToString();
  }
}

TEST(UnnestTest, RejectsMalformedChain) {
  NestedQuery q;
  q.outer.table = "r1";
  q.outer.condition = CountCondition{Scalar::Column("r1", "b"), CmpOp::kEq};
  // condition without nested block
  Catalog cat = MakeCatalog(1, 3, 3);
  EXPECT_FALSE(UnnestToAlgebra(q, cat).ok());
}

}  // namespace
}  // namespace gsopt
