// Statistics collection and cost-model sanity: exact stats, monotone
// selectivities, hash vs nested-loop cost separation, plan ranking.
#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

#include "algebra/explain.h"
#include "base/rng.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

Catalog SmallCatalog() {
  Catalog cat;
  GSOPT_CHECK(cat.CreateTable("t", {"k", "v"}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(1), I(10)}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(1), I(20)}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(2), Value::Null()}).ok());
  GSOPT_CHECK(cat.CreateTable("u", {"k"}).ok());
  for (int i = 0; i < 10; ++i) GSOPT_CHECK(cat.Insert("u", {I(i)}).ok());
  return cat;
}

TEST(StatisticsTest, ExactCountsAndDistincts) {
  Catalog cat = SmallCatalog();
  Statistics stats = Statistics::Collect(cat);
  EXPECT_DOUBLE_EQ(stats.Rows("t"), 3.0);
  EXPECT_DOUBLE_EQ(stats.Distinct("t", "k"), 2.0);
  EXPECT_DOUBLE_EQ(stats.Distinct("t", "v"), 2.0);  // NULL not counted
  EXPECT_DOUBLE_EQ(stats.Distinct("u", "k"), 10.0);
  const TableStats* ts = stats.Table("t");
  ASSERT_NE(ts, nullptr);
  EXPECT_NEAR(ts->columns.at("v").null_fraction, 1.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.Table("nope"), nullptr);
  EXPECT_DOUBLE_EQ(stats.Rows("nope"), 1.0);  // safe default
}

TEST(CostModelTest, SelectivityOrdering) {
  Catalog cat = SmallCatalog();
  CostModel model(Statistics::Collect(cat));
  Predicate eq(MakeAtom("t", "k", CmpOp::kEq, "u", "k"));
  Predicate rng(MakeAtom("t", "k", CmpOp::kLe, "u", "k"));
  Predicate ne(MakeAtom("t", "k", CmpOp::kNe, "u", "k"));
  double s_eq = model.Selectivity(eq);
  double s_rng = model.Selectivity(rng);
  double s_ne = model.Selectivity(ne);
  EXPECT_LT(s_eq, s_rng);
  EXPECT_LT(s_rng, s_ne);
  // Conjunction multiplies (independence).
  EXPECT_NEAR(model.Selectivity(Predicate::And(eq, rng)), s_eq * s_rng,
              1e-12);
  EXPECT_DOUBLE_EQ(model.Selectivity(Predicate::True()), 1.0);
}

TEST(CostModelTest, HashJoinBeatsNestedLoopInCost) {
  Catalog cat;
  Rng rngen(3);
  RandomRelationOptions opt;
  opt.num_rows = 200;
  opt.domain = 50;
  AddRandomTables(2, opt, &rngen, &cat);
  CostModel model(Statistics::Collect(cat));
  NodePtr equi = Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                            Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2",
                                               "a")));
  NodePtr theta = Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                             Predicate(MakeAtom("r1", "a", CmpOp::kLe, "r2",
                                                "a")));
  EXPECT_LT(model.Cost(equi), model.Cost(theta));
}

TEST(CostModelTest, OuterJoinNeverSmallerThanPreservedSide) {
  Catalog cat;
  Rng rngen(4);
  RandomRelationOptions opt;
  opt.num_rows = 100;
  opt.domain = 1000;  // selective join
  AddRandomTables(2, opt, &rngen, &cat);
  CostModel model(Statistics::Collect(cat));
  Predicate p(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"));
  CostEstimate loj =
      model.Estimate(Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                                         p));
  CostEstimate foj = model.Estimate(
      Node::FullOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"), p));
  EXPECT_GE(loj.rows, 100.0);
  EXPECT_GE(foj.rows, 200.0);
}

TEST(CostModelTest, SelectionReducesRowsNotBelowZero) {
  Catalog cat = SmallCatalog();
  CostModel model(Statistics::Collect(cat));
  NodePtr scan = Node::Leaf("u");
  NodePtr sel = Node::Select(
      scan, Predicate(MakeConstAtom("u", "k", CmpOp::kEq, I(3))));
  EXPECT_LT(model.Estimate(sel).rows, model.Estimate(scan).rows);
  EXPECT_GT(model.Estimate(sel).rows, 0.0);
  EXPECT_GT(model.Estimate(sel).cost, model.Estimate(scan).cost);
}

TEST(CostModelTest, GsCostsMoreThanPlainSelect) {
  Catalog cat = SmallCatalog();
  CostModel model(Statistics::Collect(cat));
  NodePtr base = Node::Join(Node::Leaf("t"), Node::Leaf("u"),
                            Predicate(MakeAtom("t", "k", CmpOp::kEq, "u",
                                               "k")));
  Predicate p(MakeAtom("t", "v", CmpOp::kLe, "u", "k"));
  NodePtr sel = Node::Select(base, p);
  NodePtr gs = Node::GeneralizedSelection(base, p,
                                          {exec::PreservedGroup{"t"}});
  EXPECT_GT(model.Cost(gs), model.Cost(sel));
}

TEST(ExplainTest, RendersTreeWithEstimates) {
  Catalog cat = SmallCatalog();
  CostModel model(Statistics::Collect(cat));
  NodePtr plan = Node::GeneralizedSelection(
      Node::LeftOuterJoin(Node::Leaf("t"), Node::Leaf("u"),
                          Predicate(MakeAtom("t", "k", CmpOp::kEq, "u",
                                             "k"))),
      Predicate(MakeAtom("t", "v", CmpOp::kLe, "u", "k")),
      {exec::PreservedGroup{"t"}});
  std::string text = Explain(plan, model);
  EXPECT_NE(text.find("GS["), std::string::npos);
  EXPECT_NE(text.find("LOJ["), std::string::npos);
  EXPECT_NE(text.find("scan t"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find("cost="), std::string::npos);
  // Three levels of indentation: GS at 0, LOJ at 2, scans at 4.
  EXPECT_NE(text.find("\n  LOJ"), std::string::npos);
  EXPECT_NE(text.find("\n    scan t"), std::string::npos);
}

}  // namespace
}  // namespace gsopt
