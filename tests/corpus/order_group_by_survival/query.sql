SELECT v.g AS o0, v.cnt AS o1, r2.b AS o2 FROM (SELECT r1.a AS g, COUNT(r1.b) AS cnt FROM r1 GROUP BY r1.a) AS v LEFT JOIN r2 ON v.g = r2.a ORDER BY v.g
