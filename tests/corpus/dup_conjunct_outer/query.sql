SELECT r1.a AS o0, r1.b AS o1, r1.c AS o2, r2.a AS o3, r2.b AS o4, r2.c AS o5 FROM r1 LEFT OUTER JOIN r2 ON r1.b = r2.a AND r1.b = r2.a
