// Regression corpus: every checked-in reproducer under tests/corpus/ must
// load, re-bind, and pass the full oracle battery (plan space, executors,
// degradation ladder, TLP, SQL round trip). The fuzz driver appends new
// minimized failures here once their bug is fixed; hand-authored cases pin
// the paper shapes (Example 2.1's aggregated-column predicate, DISTINCT
// views, duplicate conjuncts, complex predicates).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/execute.h"
#include "base/rng.h"
#include "sql/binder.h"
#include "testing/artifact.h"
#include "testing/oracles.h"
#include "testing/sql_emit.h"

#ifndef GSOPT_CORPUS_DIR
#error "GSOPT_CORPUS_DIR must point at tests/corpus"
#endif

namespace gsopt {
namespace {

std::vector<std::string> CorpusDirs() {
  auto dirs = testing::ListReproDirs(GSOPT_CORPUS_DIR);
  GSOPT_CHECK(dirs.ok());
  return *dirs;
}

TEST(CorpusTest, CorpusIsPresent) {
  std::vector<std::string> dirs = CorpusDirs();
  ASSERT_GE(dirs.size(), 3u) << "seed corpus went missing";
  bool has_example21 = false;
  for (const std::string& d : dirs) {
    if (d.find("example21") != std::string::npos) has_example21 = true;
  }
  EXPECT_TRUE(has_example21)
      << "corpus must pin Example 2.1's aggregated-column predicate";
}

TEST(CorpusTest, EveryCaseSurvivesTheOracleBattery) {
  for (const std::string& dir : CorpusDirs()) {
    SCOPED_TRACE(dir);
    auto repro = testing::LoadRepro(dir);
    ASSERT_TRUE(repro.ok()) << repro.status().ToString();

    testing::OracleOptions opt;
    Rng rng(0x5eedc0de);
    auto outcome = testing::CheckQuery(repro->query, repro->catalog, opt,
                                       &rng);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_FALSE(outcome->skipped);
    EXPECT_FALSE(outcome->failed) << outcome->ToString();
    EXPECT_GT(outcome->plans_checked, 0u);
  }
}

// Satellite: parse(emit(tree)) binds to a tree that executes bag-equal on
// the corpus queries, including Example 2.1's aggregated-column predicate.
TEST(CorpusTest, SqlRoundTripExecutesBagEqual) {
  int round_tripped = 0;
  for (const std::string& dir : CorpusDirs()) {
    SCOPED_TRACE(dir);
    auto repro = testing::LoadRepro(dir);
    ASSERT_TRUE(repro.ok()) << repro.status().ToString();

    auto emitted = testing::EmitSql(repro->query, repro->catalog);
    ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();
    auto rebound = sql::ParseAndBind(emitted->sql, repro->catalog);
    ASSERT_TRUE(rebound.ok()) << rebound.status().ToString() << "\n"
                              << emitted->sql;

    auto eq = ExecutionEquivalent(emitted->reference, *rebound,
                                  repro->catalog);
    ASSERT_TRUE(eq.ok()) << eq.status().ToString();
    EXPECT_TRUE(*eq) << "round trip diverged:\n" << emitted->sql;
    ++round_tripped;
  }
  EXPECT_GE(round_tripped, 3);
}

}  // namespace
}  // namespace gsopt
