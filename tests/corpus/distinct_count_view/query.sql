SELECT v.g0 AS o0, v.agg AS o1, r2.a AS o2, r2.b AS o3, r2.c AS o4 FROM (SELECT r1.b AS g0, COUNT(DISTINCT r1.a) AS agg FROM r1 GROUP BY r1.b) AS v FULL OUTER JOIN r2 ON r2.b = v.agg
