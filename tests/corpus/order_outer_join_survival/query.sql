SELECT r1.a AS o0, r1.b AS o1, r2.b AS o2 FROM r1 LEFT OUTER JOIN r2 ON r1.a = r2.a ORDER BY r1.a, r1.b DESC
