SELECT r1.a AS o0, r1.b AS o1, r2.a AS o2, r2.b AS o3, r3.a AS o4, r3.b AS o5 FROM r1 JOIN r2 ON r1.a = r2.a LEFT OUTER JOIN r3 ON r1.b = r3.a AND r2.b <= r3.b
