SELECT v.g0 AS o0, v.agg AS o1, r3.a AS o2, r3.b AS o3, r3.c AS o4 FROM (SELECT r1.b AS g0, SUM(r2.a) AS agg FROM r1 JOIN r2 ON r1.c = r2.c GROUP BY r1.b) AS v LEFT OUTER JOIN r3 ON r3.b < 2 * v.agg
