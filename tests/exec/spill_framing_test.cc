// Spill record-framing bounds: the on-disk tuple record stores value and
// vid counts as u16 and lengths as u32, so AppendTupleRecord must reject
// tuples past those limits with a typed Status and leave the output buffer
// untouched (the old unchecked casts silently truncated the counts, which
// corrupted every subsequent record in the run). Also round-trips records
// through a real SpillFile at the exact framing boundary.
#include "exec/spill.h"

#include <gtest/gtest.h>

#include <string>

#include "base/spill_file.h"
#include "relational/relation.h"
#include "relational/value.h"

namespace gsopt {
namespace {

using exec::internal::AppendTupleRecord;
using exec::internal::ReadTupleRecord;
using exec::internal::WriteTupleRecord;

Tuple WideTuple(size_t values, size_t vids) {
  Tuple t;
  t.values.reserve(values);
  for (size_t i = 0; i < values; ++i) {
    t.values.push_back(Value::Int(static_cast<int64_t>(i)));
  }
  t.vids.assign(vids, static_cast<RowId>(7));
  return t;
}

TEST(SpillFramingTest, RejectsTooManyValuesAndLeavesBufferUntouched) {
  Tuple t = WideTuple(70000, 1);
  std::string buf = "prefix";
  Status s = AppendTupleRecord(t, 0, &buf);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(buf, "prefix");  // rolled back, no partial record
}

TEST(SpillFramingTest, RejectsTooManyVids) {
  Tuple t = WideTuple(1, 70000);
  std::string buf;
  Status s = AppendTupleRecord(t, 0, &buf);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(buf.empty());
}

TEST(SpillFramingTest, AcceptsExactU16Boundary) {
  Tuple t = WideTuple(65535, 65535);
  std::string buf;
  EXPECT_TRUE(AppendTupleRecord(t, 42, &buf).ok());
  EXPECT_FALSE(buf.empty());
  Tuple over = WideTuple(65536, 1);
  std::string buf2;
  EXPECT_EQ(AppendTupleRecord(over, 42, &buf2).code(),
            StatusCode::kResourceExhausted);
}

TEST(SpillFramingTest, BoundaryRecordRoundTripsThroughSpillFile) {
  auto f = SpillFile::Create("", nullptr);
  ASSERT_TRUE(f.ok());
  Tuple t = WideTuple(65535, 3);
  t.values[0] = Value::Null();
  t.values[1] = Value::String("payload \x01 with bytes");
  t.values[2] = Value::Double(-0.0);
  t.vids[1] = kNullRowId;
  std::string scratch;
  ASSERT_TRUE(WriteTupleRecord(&*f, t, /*orig=*/123456789, &scratch).ok());
  ASSERT_TRUE(f->Rewind().ok());
  Tuple back;
  int64_t orig = -1;
  ASSERT_TRUE(ReadTupleRecord(&*f, &back, &orig).ok());
  EXPECT_EQ(orig, 123456789);
  ASSERT_EQ(back.values.size(), t.values.size());
  for (size_t i = 0; i < t.values.size(); ++i) {
    EXPECT_TRUE(Value::IdentityEquals(back.values[i], t.values[i])) << i;
  }
  EXPECT_EQ(back.vids, t.vids);
}

TEST(SpillFramingTest, TruncatedRecordReadsAsInternal) {
  auto f = SpillFile::Create("", nullptr);
  ASSERT_TRUE(f.ok());
  std::string scratch;
  ASSERT_TRUE(WriteTupleRecord(&*f, WideTuple(4, 2), 7, &scratch).ok());
  // A second, cut-off record: write only half of its bytes.
  std::string rec;
  ASSERT_TRUE(AppendTupleRecord(WideTuple(4, 2), 8, &rec).ok());
  ASSERT_TRUE(f->Append(rec.data(), rec.size() / 2).ok());
  ASSERT_TRUE(f->Rewind().ok());
  Tuple back;
  int64_t orig = 0;
  ASSERT_TRUE(ReadTupleRecord(&*f, &back, &orig).ok());
  EXPECT_EQ(ReadTupleRecord(&*f, &back, &orig).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace gsopt
