// Serial-vs-parallel bag-equality property suite: for every operator
// kernel, executing with a multi-lane Executor must produce the same bag
// of tuples as the serial reference kernels, on randomized null-heavy
// inputs. Covers both join paths (partitioned hash and nested loops),
// outer-join null-padding, generalized-selection resurrection of preserved
// groups, and parallel hash aggregation. The executor's thresholds are
// forced low so the parallel paths actually run on test-sized inputs.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "exec/aggregate.h"
#include "exec/eval.h"
#include "exec/executor.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::AggFunc;
using exec::AggSpec;
using exec::AntiJoin;
using exec::ExecContext;
using exec::Executor;
using exec::FullOuterJoin;
using exec::GeneralizedProjection;
using exec::GeneralizedSelection;
using exec::GroupBySpec;
using exec::InnerJoin;
using exec::LeftOuterJoin;
using exec::Mgoj;
using exec::OuterUnion;
using exec::PreservedGroup;
using exec::Product;
using exec::RightOuterJoin;
using exec::Select;
using exec::SemiJoin;

// 4 lanes, thresholds forced down so ~100-row inputs fan out across many
// small morsels (odd morsel boundaries included).
Executor* TestExecutor() {
  static Executor* ex = [] {
    auto* e = new Executor(4);
    e->set_min_parallel_rows(1);
    e->set_morsel_rows(7);
    return e;
  }();
  return ex;
}

ExecContext ParallelCtx() { return ExecContext{nullptr, nullptr, TestExecutor()}; }

Relation NullHeavy(const std::string& name, int rows, uint64_t seed,
                   int64_t domain = 6, double null_fraction = 0.3) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = domain;
  opt.null_fraction = null_fraction;
  return MakeRandomRelation(name, {"a", "b"}, opt, &rng);
}

// a.a = b.a with residual a.b < b.b: exercises the hash path's key
// encoding, NULL-key skips, and residual evaluation.
Predicate HashableJoinPred() {
  return Predicate::And(
      Predicate(MakeAtom("ra", "a", CmpOp::kEq, "rb", "a")),
      Predicate(MakeAtom("ra", "b", CmpOp::kLt, "rb", "b")));
}

// No separable equi-conjunct: forces the nested-loop path.
Predicate NestedLoopPred() {
  return Predicate(MakeAtom("ra", "a", CmpOp::kLt, "rb", "a"));
}

Predicate SelectPred() {
  return Predicate(MakeAtom("ra", "a", CmpOp::kLt, "ra", "b"));
}

TEST(ParallelExecTest, SelectMatchesSerial) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Relation r = NullHeavy("ra", 211, seed);
    Relation serial = *Select(r, SelectPred());
    Relation parallel = *Select(r, SelectPred(), ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

TEST(ParallelExecTest, ProductMatchesSerial) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Relation a = NullHeavy("ra", 53, seed);
    Relation b = NullHeavy("rb", 31, seed + 100);
    Relation serial = *Product(a, b);
    Relation parallel = *Product(a, b, ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

TEST(ParallelExecTest, ProductWithEmptySideMatchesSerial) {
  Relation a = NullHeavy("ra", 64, 1);
  Relation b(a.schema(), a.vschema());
  EXPECT_TRUE(
      Relation::BagEquals(*Product(a, b), *Product(a, b, ParallelCtx())));
  EXPECT_TRUE(
      Relation::BagEquals(*Product(b, a), *Product(b, a, ParallelCtx())));
}

TEST(ParallelExecTest, InnerJoinHashPathMatchesSerial) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Relation a = NullHeavy("ra", 157, seed);
    Relation b = NullHeavy("rb", 203, seed + 1000);
    Predicate p = HashableJoinPred();
    Relation serial = *InnerJoin(a, b, p);
    Relation parallel = *InnerJoin(a, b, p, ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

TEST(ParallelExecTest, InnerJoinNestedLoopPathMatchesSerial) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Relation a = NullHeavy("ra", 83, seed);
    Relation b = NullHeavy("rb", 61, seed + 1000);
    Predicate p = NestedLoopPred();
    Relation serial = *InnerJoin(a, b, p);
    Relation parallel = *InnerJoin(a, b, p, ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

// Outer joins depend on the matched flags collected across lanes: the
// null-padded rows must be identical to serial even though matches are
// found in parallel (a-side flags written by the owning lane, b-side flags
// OR-merged).
TEST(ParallelExecTest, OuterJoinNullPaddingMatchesSerial) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Relation a = NullHeavy("ra", 149, seed, 9, 0.4);
    Relation b = NullHeavy("rb", 181, seed + 2000, 9, 0.4);
    Predicate p = HashableJoinPred();
    ExecContext ctx = ParallelCtx();
    EXPECT_TRUE(Relation::BagEquals(*LeftOuterJoin(a, b, p),
                                    *LeftOuterJoin(a, b, p, ctx)))
        << "LOJ seed " << seed;
    EXPECT_TRUE(Relation::BagEquals(*RightOuterJoin(a, b, p),
                                    *RightOuterJoin(a, b, p, ctx)))
        << "ROJ seed " << seed;
    EXPECT_TRUE(Relation::BagEquals(*FullOuterJoin(a, b, p),
                                    *FullOuterJoin(a, b, p, ctx)))
        << "FOJ seed " << seed;
  }
}

TEST(ParallelExecTest, SemiAndAntiJoinMatchSerial) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Relation a = NullHeavy("ra", 127, seed);
    Relation b = NullHeavy("rb", 113, seed + 3000);
    Predicate p = HashableJoinPred();
    ExecContext ctx = ParallelCtx();
    EXPECT_TRUE(
        Relation::BagEquals(*SemiJoin(a, b, p), *SemiJoin(a, b, p, ctx)))
        << "semi seed " << seed;
    EXPECT_TRUE(
        Relation::BagEquals(*AntiJoin(a, b, p), *AntiJoin(a, b, p, ctx)))
        << "anti seed " << seed;
  }
}

TEST(ParallelExecTest, OuterUnionMatchesSerial) {
  Relation a = NullHeavy("ra", 97, 5);
  Relation b = NullHeavy("rb", 59, 6);
  EXPECT_TRUE(Relation::BagEquals(*OuterUnion(a, b),
                                  *OuterUnion(a, b, ParallelCtx())));
}

// GS resurrection: the per-group difference fans out over r's rows, with
// candidate keys deduplicated across lanes. Null-heavy data makes
// GroupPartAllNull and NULL-valued group keys both occur.
TEST(ParallelExecTest, GeneralizedSelectionResurrectionMatchesSerial) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Relation a = NullHeavy("ra", 23, seed, 5, 0.35);
    Relation b = NullHeavy("rb", 17, seed + 4000, 5, 0.35);
    Relation r = *Product(a, b);
    Predicate p = HashableJoinPred();
    std::vector<PreservedGroup> groups = {PreservedGroup{"ra"},
                                          PreservedGroup{"rb"}};
    Relation serial = *GeneralizedSelection(r, p, groups);
    Relation parallel = *GeneralizedSelection(r, p, groups, ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

// GS applied above outer-join padding: all-NULL group parts must not be
// resurrected, in either execution mode.
TEST(ParallelExecTest, GeneralizedSelectionOverOuterJoinMatchesSerial) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Relation a = NullHeavy("ra", 101, seed, 4, 0.3);
    Relation b = NullHeavy("rb", 89, seed + 5000, 4, 0.3);
    Relation r = *FullOuterJoin(a, b, HashableJoinPred());
    Predicate p = SelectPred();
    std::vector<PreservedGroup> groups = {PreservedGroup{"rb"}};
    Relation serial = *GeneralizedSelection(r, p, groups);
    Relation parallel = *GeneralizedSelection(r, p, groups, ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

TEST(ParallelExecTest, MgojMatchesSerial) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Relation a = NullHeavy("ra", 131, seed);
    Relation b = NullHeavy("rb", 139, seed + 6000);
    Predicate p = HashableJoinPred();
    std::vector<PreservedGroup> groups = {PreservedGroup{"ra"},
                                          PreservedGroup{"rb"}};
    Relation serial = *Mgoj(a, b, p, groups);
    Relation parallel = *Mgoj(a, b, p, groups, ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

GroupBySpec AggSpecOf(AggFunc f, bool distinct = false) {
  AggSpec agg;
  agg.func = f;
  agg.distinct = distinct;
  if (f != AggFunc::kCountStar && f != AggFunc::kCountPresence) {
    agg.input = Scalar::Column("ra", "b");
  }
  if (f == AggFunc::kCountPresence) agg.presence_rel = "ra";
  agg.out_rel = "q";
  agg.out_name = "agg";
  GroupBySpec spec;
  spec.group_cols = {Attribute{"ra", "a"}};
  spec.aggs = {std::move(agg)};
  return spec;
}

TEST(ParallelExecTest, HashAggregationMatchesSerial) {
  for (AggFunc f : {AggFunc::kCountStar, AggFunc::kCount, AggFunc::kSum,
                    AggFunc::kAvg, AggFunc::kMin, AggFunc::kMax,
                    AggFunc::kCountPresence}) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      Relation r = NullHeavy("ra", 223, seed, 11, 0.3);
      GroupBySpec spec = AggSpecOf(f);
      Relation serial = *GeneralizedProjection(r, spec);
      Relation parallel = *GeneralizedProjection(r, spec, ParallelCtx());
      EXPECT_TRUE(Relation::BagEquals(serial, parallel))
          << AggFuncName(f) << " seed " << seed;
    }
  }
}

// DISTINCT aggregates fall back to the serial path even with an executor
// attached (per-lane distinct sets cannot be merged); results must still
// be correct.
TEST(ParallelExecTest, DistinctAggregationStaysCorrectWithExecutor) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Relation r = NullHeavy("ra", 223, seed, 5, 0.2);
    GroupBySpec spec = AggSpecOf(AggFunc::kCount, /*distinct=*/true);
    Relation serial = *GeneralizedProjection(r, spec);
    Relation parallel = *GeneralizedProjection(r, spec, ParallelCtx());
    EXPECT_TRUE(Relation::BagEquals(serial, parallel)) << "seed " << seed;
  }
}

// A row cap must cancel a parallel join mid-production with
// kResourceExhausted, exactly like serial execution.
TEST(ParallelExecTest, RowCapCancelsParallelJoin) {
  Relation a = NullHeavy("ra", 300, 1, 3, 0.0);
  Relation b = NullHeavy("rb", 300, 2, 3, 0.0);
  ResourceBudget budget;
  budget.WithMaxRows(50);
  ExecContext ctx{&budget, nullptr, TestExecutor()};
  auto out = InnerJoin(a, b, Predicate(MakeAtom("ra", "a", CmpOp::kEq, "rb",
                                                "a")),
                       ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

// An already-expired deadline cancels every lane before real work starts.
TEST(ParallelExecTest, ExpiredDeadlineCancelsParallelProduct) {
  Relation a = NullHeavy("ra", 300, 3, 3, 0.0);
  Relation b = NullHeavy("rb", 300, 4, 3, 0.0);
  ResourceBudget budget;
  budget.WithDeadline(ResourceBudget::Clock::now());
  ExecContext ctx{&budget, nullptr, TestExecutor()};
  auto out = Product(a, b, ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

// Parallel execution with stats attached merges per-lane counters into the
// shared node: totals must match the serial run's totals for count-exact
// fields.
TEST(ParallelExecTest, LaneStatsMergeMatchesSerialTotals) {
  Relation a = NullHeavy("ra", 157, 7);
  Relation b = NullHeavy("rb", 203, 8);
  Predicate p = HashableJoinPred();
  exec::OperatorStats serial_stats;
  ExecContext sctx{nullptr, &serial_stats};
  ASSERT_TRUE(InnerJoin(a, b, p, sctx).ok());
  exec::OperatorStats par_stats;
  ExecContext pctx{nullptr, &par_stats, TestExecutor()};
  ASSERT_TRUE(InnerJoin(a, b, p, pctx).ok());
  EXPECT_TRUE(par_stats.hash_path);
  EXPECT_EQ(par_stats.rows_in, serial_stats.rows_in);
  EXPECT_EQ(par_stats.rows_out, serial_stats.rows_out);
  EXPECT_EQ(par_stats.build_rows, serial_stats.build_rows);
  EXPECT_EQ(par_stats.probe_rows, serial_stats.probe_rows);
  EXPECT_EQ(par_stats.null_key_skips, serial_stats.null_key_skips);
  EXPECT_EQ(par_stats.residual_evals, serial_stats.residual_evals);
}

}  // namespace
}  // namespace gsopt
