// Regression tests for executor governance bugs: the Product reservation
// overflow, the hash-probe bucket loop running deadline-blind, and
// ExecutionEquivalent dropping its ExecuteOptions. Each test fails on the
// pre-fix code (by crash, by never ticking, or by ignoring the budget).
#include <chrono>

#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/budget.h"
#include "base/rng.h"
#include "exec/eval.h"
#include "exec/keys.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

Relation WideRelation(const std::string& name, int rows, uint64_t seed) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = 8;
  return MakeRandomRelation(name, {"x"}, opt, &rng);
}

TEST(ProductRegressionTest, LargeInputsDoNotOverflowReservation) {
  // 50000 x 50000: the exact cross-product cardinality (2.5e9) overflows
  // int, so the pre-fix `Reserve(a.NumRows() * b.NumRows())` was
  // signed-overflow UB -- in practice a negative count whose size_t
  // conversion made reserve() throw, before any cap could fire. Post-fix
  // the reservation is computed in 64 bits and clamped, and the row cap
  // stops the loop after a few thousand tuples.
  Relation a = WideRelation("a", 50000, 7);
  Relation b = WideRelation("b", 50000, 8);
  ResourceBudget budget;
  budget.WithMaxRows(1000);
  exec::ExecContext ctx{&budget, nullptr};
  auto out = exec::Product(a, b, ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(ProductRegressionTest, ExpiredDeadlineStopsProductionPromptly) {
  Relation a = WideRelation("a", 2000, 9);
  Relation b = WideRelation("b", 2000, 10);
  ResourceBudget budget;
  budget.WithDeadline(ResourceBudget::Clock::now());  // already expired
  exec::ExecContext ctx{&budget, nullptr};
  auto out = exec::Product(a, b, ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(HashJoinRegressionTest, ProbeTicksInsideSkewedBucket) {
  // One probe row whose key bucket holds the entire build side, with a
  // residual predicate that never matches: the pre-fix probe loop ticked
  // once per probe row, so this join ran the whole bucket deadline-blind
  // (deadline_checks() ~ 1). Post-fix it ticks per candidate pair.
  constexpr int kBucket = 5000;
  std::vector<std::vector<Value>> b_rows;
  b_rows.reserve(kBucket);
  for (int i = 0; i < kBucket; ++i) b_rows.push_back({I(1), I(0)});
  Relation b = MakeRelation("b", {"x", "y"}, b_rows);
  Relation a = MakeRelation("a", {"x", "y"}, {{I(1), I(0)}});

  // a.x = b.x is the hash key; a.y > b.y is residual and always false.
  Predicate p = Predicate::And(
      Predicate(MakeAtom("a", "x", CmpOp::kEq, "b", "x")),
      Predicate(MakeAtom("a", "y", CmpOp::kGt, "b", "y")));

  ResourceBudget budget;
  budget.WithDeadlineAfter(std::chrono::hours(1));
  exec::ExecContext ctx{&budget, nullptr};
  auto out = exec::InnerJoin(a, b, p, ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 0);
  EXPECT_GE(budget.deadline_checks(), static_cast<uint64_t>(kBucket));
}

TEST(ExecutionEquivalentRegressionTest, HonorsExecuteOptions) {
  // Pre-fix ExecutionEquivalent executed both plans with default options,
  // silently discarding the caller's budget; a row cap must now surface as
  // kResourceExhausted instead of an unbudgeted full run.
  Catalog cat;
  Rng rng(11);
  RandomRelationOptions opt;
  opt.num_rows = 30;
  opt.domain = 4;
  AddRandomTables(2, opt, &rng, &cat);
  NodePtr q = Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                         Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")));

  ResourceBudget budget;
  budget.WithMaxRows(3);
  ExecuteOptions xo;
  xo.budget = &budget;
  auto eq = ExecutionEquivalent(q, q, cat, xo);
  ASSERT_FALSE(eq.ok());
  EXPECT_EQ(eq.status().code(), StatusCode::kResourceExhausted);

  // Without a budget the same comparison completes and agrees.
  auto plain = ExecutionEquivalent(q, q, cat);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(*plain);
}

std::string KeyOf(const Value& v) {
  std::string key;
  exec::AppendValueKey(v, &key);
  return key;
}

TEST(ValueKeyRegressionTest, SmallDoublesGetDistinctKeys) {
  // Pre-fix AppendValueKey encoded doubles with std::to_string, whose
  // fixed 6 fractional digits collapsed any pair of small doubles:
  // 1e-9 and 2e-9 both encoded as "0.000000" and merged in every hash
  // join, grouping, and GS difference.
  EXPECT_NE(KeyOf(Value::Double(1e-9)), KeyOf(Value::Double(2e-9)));
  EXPECT_NE(KeyOf(Value::Double(0.1234567)), KeyOf(Value::Double(0.1234568)));
  // Round-trippable: equal doubles still share a key.
  EXPECT_EQ(KeyOf(Value::Double(1e-9)), KeyOf(Value::Double(1e-9)));
}

TEST(ValueKeyRegressionTest, LargeIntsGetDistinctKeys) {
  // Pre-fix kInt encoding routed through static_cast<double>, so adjacent
  // int64s past 2^53 shared a key.
  constexpr int64_t kBig = (int64_t{1} << 53) + 1;
  EXPECT_NE(KeyOf(Value::Int(kBig)), KeyOf(Value::Int(kBig + 1)));
}

TEST(ValueKeyRegressionTest, IntAndWholeDoubleShareKey) {
  // IdentityEquals treats 1 == 1.0; the key encoding must agree so mixed
  // int/double join columns keep matching.
  EXPECT_EQ(KeyOf(Value::Int(1)), KeyOf(Value::Double(1.0)));
  EXPECT_EQ(KeyOf(Value::Int(-7)), KeyOf(Value::Double(-7.0)));
  EXPECT_NE(KeyOf(Value::Int(1)), KeyOf(Value::Double(1.5)));
}

TEST(ValueKeyRegressionTest, HashJoinSeparatesSmallDoubles) {
  // End-to-end symptom: joining on a double column holding 1e-9 vs 2e-9
  // produced a spurious match pre-fix (both rows landed in one bucket and
  // the equi-atom was not re-verified on the hash path).
  Relation a = MakeRelation("a", {"x"}, {{Value::Double(1e-9)}});
  Relation b = MakeRelation("b", {"x"}, {{Value::Double(2e-9)}});
  Predicate p(MakeAtom("a", "x", CmpOp::kEq, "b", "x"));
  auto out = exec::InnerJoin(a, b, p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 0);
}

}  // namespace
}  // namespace gsopt
