// Projection kernels: duplicate preservation, virtual-schema restriction,
// renaming semantics, interaction with GS provenance.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(ProjectAsTest, RenamesColumnsAndDropsVids) {
  Relation r = MakeRelation("t", {"x", "y"}, {{I(1), I(2)}, {I(3), I(4)}});
  Relation out = *exec::ProjectAs(r, {Attribute{"t", "y"}, Attribute{"t", "x"}},
                                 {Attribute{"q", "a"}, Attribute{"q", "b"}});
  EXPECT_EQ(out.schema().ToString(), "(q.a, q.b)");
  EXPECT_EQ(out.vschema().size(), 0);
  EXPECT_EQ(out.row(0).values[0].AsInt(), 2);
  EXPECT_EQ(out.row(0).values[1].AsInt(), 1);
}

TEST(ProjectAsTest, PreservesDuplicates) {
  Relation r = MakeRelation("t", {"x", "y"},
                            {{I(1), I(2)}, {I(1), I(9)}, {I(1), I(2)}});
  Relation out =
      *exec::ProjectAs(r, {Attribute{"t", "x"}}, {Attribute{"q", "x"}});
  EXPECT_EQ(out.NumRows(), 3);
}

TEST(ProjectNodeTest, RenamingThroughExecute) {
  Catalog cat;
  GSOPT_CHECK(cat.CreateTable("t", {"x"}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(7)}).ok());
  NodePtr p = Node::ProjectAs(Node::Leaf("t"), {Attribute{"t", "x"}},
                              {Attribute{"out", "val"}});
  auto rel = Execute(p, cat);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema().attr(0).Qualified(), "out.val");
  EXPECT_EQ(rel->row(0).values[0].AsInt(), 7);
}

TEST(ProjectTest, VirtualSchemaOnlyForFullyCoveredRelations) {
  Relation a = MakeRelation("a", {"x"}, {{I(1)}});
  Relation b = MakeRelation("b", {"y", "z"}, {{I(2), I(3)}});
  Relation ab = *exec::Product(a, b);
  // Keep a.x and b.y: both relations contribute at least one column, so
  // both vids survive (provenance is per relation, not per column).
  Relation p1 =
      *exec::Project(ab, {Attribute{"a", "x"}, Attribute{"b", "y"}});
  EXPECT_EQ(p1.vschema().size(), 2);
  // Keep only a.x: b's vid disappears.
  Relation p2 = *exec::Project(ab, {Attribute{"a", "x"}});
  EXPECT_EQ(p2.vschema().size(), 1);
  EXPECT_EQ(p2.vschema().rel(0), "a");
}

TEST(ProjectTest, GsAfterProjectUsesSurvivingProvenance) {
  // GS over a projection that kept a's vid: duplicates of a (same values,
  // different row ids) must still resurrect individually.
  Relation a = MakeRelation("a", {"x"}, {{I(5)}, {I(5)}});
  Relation b = MakeRelation("b", {"x"}, {{I(9)}});
  Relation ab = *exec::Product(a, b);
  Relation proj =
      *exec::Project(ab, {Attribute{"a", "x"}, Attribute{"b", "x"}});
  Predicate never(MakeConstAtom("b", "x", CmpOp::kLt, I(0)));
  Relation gs = *exec::GeneralizedSelection(proj, never,
                                           {exec::PreservedGroup{"a"}});
  EXPECT_EQ(gs.NumRows(), 2);  // one resurrection per a-row id
}

}  // namespace
}  // namespace gsopt
