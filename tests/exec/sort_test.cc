// The external sort operator and its ordering contract: comparator
// properties (NULL lowest, exact int/double unification past 2^53, NaN
// rules, key-class refinement), stability, multi-key ASC/DESC, spilled
// runs with bounded fan-in (temp files gone, ledger unwound), injected
// ENOSPC / short-write degradation to typed errors, and the merge-join /
// sorted-aggregation paths against their hash twins.
#include "exec/sort.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/fault_injector.h"
#include "base/rng.h"
#include "base/spill_file.h"
#include "exec/aggregate.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::CheckSorted;
using exec::CompareValuesKeyClass;
using exec::CompareValuesTotal;
using exec::ExecContext;
using exec::JoinStrategy;
using exec::OperatorStats;
using exec::SortKey;
using exec::SortSpec;
using exec::SpillConfig;

Value I(int64_t v) { return Value::Int(v); }
Value D(double v) { return Value::Double(v); }
Value S(const char* v) { return Value::String(v); }
Value N() { return Value::Null(); }

SortSpec Asc(const std::string& rel, const std::string& col) {
  return {SortKey{Attribute{rel, col}, false}};
}

constexpr int64_t kTwo53 = 9007199254740992;  // 2^53

TEST(CompareValuesTotalTest, NullIsLowest) {
  EXPECT_LT(CompareValuesTotal(N(), I(-100)), 0);
  EXPECT_LT(CompareValuesTotal(N(), D(-1e300)), 0);
  EXPECT_LT(CompareValuesTotal(N(), S("")), 0);
  EXPECT_EQ(CompareValuesTotal(N(), N()), 0);
}

TEST(CompareValuesTotalTest, IntDoubleUnified) {
  EXPECT_EQ(CompareValuesTotal(I(1), D(1.0)), 0);
  EXPECT_LT(CompareValuesTotal(I(1), D(1.5)), 0);
  EXPECT_GT(CompareValuesTotal(I(2), D(1.5)), 0);
  EXPECT_LT(CompareValuesTotal(D(1.5), I(2)), 0);
}

TEST(CompareValuesTotalTest, ExactPastTwo53) {
  // int(2^53 + 1) casts to double as 2^53; the exact comparator must still
  // order it strictly after both int(2^53) and double(2^53).
  EXPECT_GT(CompareValuesTotal(I(kTwo53 + 1), D(static_cast<double>(kTwo53))),
            0);
  EXPECT_LT(CompareValuesTotal(D(static_cast<double>(kTwo53)), I(kTwo53 + 1)),
            0);
  EXPECT_EQ(CompareValuesTotal(I(kTwo53), D(static_cast<double>(kTwo53))), 0);
  // Huge doubles clear every int64.
  EXPECT_LT(CompareValuesTotal(I(INT64_MAX), D(1e300)), 0);
  EXPECT_GT(CompareValuesTotal(I(INT64_MIN), D(-1e300)), 0);
}

TEST(CompareValuesTotalTest, NanGreatestNumberAndEqualsItself) {
  Value nan = D(std::nan(""));
  EXPECT_GT(CompareValuesTotal(nan, D(1e300)), 0);
  EXPECT_GT(CompareValuesTotal(nan, I(INT64_MAX)), 0);
  EXPECT_EQ(CompareValuesTotal(nan, nan), 0);
  // ...but every number, NaN included, orders before every string.
  EXPECT_LT(CompareValuesTotal(nan, S("")), 0);
}

TEST(CompareValuesKeyClassTest, RefinesOnlyTheInexactCorner) {
  // Within the exact range the key classes are the magnitude classes.
  EXPECT_EQ(CompareValuesKeyClass(I(5), D(5.0)), 0);
  EXPECT_EQ(CompareValuesKeyClass(I(kTwo53), D(static_cast<double>(kTwo53))),
            0);
  // Past 2^53 an int64 and a magnitude-equal double encode to distinct
  // hash keys, so the key-class order must separate them (either way, but
  // consistently).
  const int64_t two54 = kTwo53 * 2;
  int c = CompareValuesKeyClass(I(two54), D(static_cast<double>(two54)));
  EXPECT_NE(c, 0);
  EXPECT_EQ(CompareValuesKeyClass(D(static_cast<double>(two54)), I(two54)),
            -c);
  // The refinement never contradicts the total order.
  EXPECT_EQ(CompareValuesTotal(I(two54), D(static_cast<double>(two54))), 0);
}

TEST(SortTest, MultiKeyDirectionsAndNullPlacement) {
  Relation r = MakeRelation("r", {"a", "b"},
                            {{I(2), I(1)},
                             {N(), I(9)},
                             {I(1), N()},
                             {I(1), I(5)},
                             {I(2), I(0)}});
  SortSpec spec = {SortKey{Attribute{"r", "a"}, false},
                   SortKey{Attribute{"r", "b"}, true}};
  Relation out = *exec::Sort(r, spec);
  ASSERT_EQ(out.NumRows(), 5);
  EXPECT_TRUE(CheckSorted(out, spec).ok());
  // NULLs are lowest: first under ASC on a; last under DESC on b.
  EXPECT_TRUE(out.row(0).values[0].is_null());
  EXPECT_EQ(out.row(1).values[0].AsInt(), 1);
  EXPECT_EQ(out.row(1).values[1].AsInt(), 5);  // DESC: 5 before NULL
  EXPECT_TRUE(out.row(2).values[1].is_null());
  EXPECT_EQ(out.row(3).values[1].AsInt(), 1);  // a=2: DESC b -> 1, 0
  EXPECT_EQ(out.row(4).values[1].AsInt(), 0);
}

TEST(SortTest, StableOnEqualKeys) {
  // Equal sort keys keep input order: b is a serial number.
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({I(i % 3), I(i)});
  Relation r = MakeRelation("r", {"a", "b"}, rows);
  Relation out = *exec::Sort(r, Asc("r", "a"));
  int64_t prev_a = -1, prev_b = -1;
  for (int64_t i = 0; i < out.NumRows(); ++i) {
    int64_t a = out.row(i).values[0].AsInt();
    int64_t b = out.row(i).values[1].AsInt();
    if (a == prev_a) EXPECT_GT(b, prev_b) << "stability broken at row " << i;
    prev_a = a;
    prev_b = b;
  }
}

TEST(SortTest, MissingAttributeIsInvalidArgument) {
  Relation r = MakeRelation("r", {"a"}, {{I(1)}});
  auto out = exec::Sort(r, Asc("r", "zz"));
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckSortedTest, ReportsFirstViolation) {
  Relation r = MakeRelation("r", {"a"}, {{I(1)}, {I(3)}, {I(2)}});
  Status s = CheckSorted(r, Asc("r", "a"));
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("1..2"), std::string::npos) << s.ToString();
  EXPECT_TRUE(CheckSorted(r, {SortKey{Attribute{"r", "a"}, true}}).code() ==
              StatusCode::kInternal);
}

Relation BigTable(uint64_t seed, int rows) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = 50;
  opt.null_fraction = 0.15;
  return MakeRandomRelation("r1", {"a", "b", "c"}, opt, &rng);
}

TEST(ExternalSortTest, SpilledRunsMatchInMemoryAndCleanUp) {
  Relation r = BigTable(7, 600);
  SortSpec spec = {SortKey{Attribute{"r1", "a"}, false},
                   SortKey{Attribute{"r1", "b"}, true}};
  Relation reference = *exec::Sort(r, spec);

  ResourceBudget budget;
  budget.WithMaxMemory(4 * 1024);
  SpillConfig cfg;
  cfg.enabled = true;
  OperatorStats stats;
  ExecContext ctx;
  ctx.budget = &budget;
  ctx.stats = &stats;
  ctx.spill = &cfg;
  auto spilled = exec::Sort(r, spec, ctx);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_GT(stats.sort_runs, 1u) << "cap never tripped; test is vacuous";
  EXPECT_TRUE(stats.spilled);
  EXPECT_GT(stats.spill_bytes_written, 0u);
  EXPECT_EQ(SpillFile::LiveCount(), 0u);
  EXPECT_EQ(budget.memory_charged(), 0u);
  EXPECT_TRUE(CheckSorted(*spilled, spec).ok());
  // Same rows in the same order, not just the same bag: the external path
  // keeps the stability tie-break through run files.
  ASSERT_EQ(spilled->NumRows(), reference.NumRows());
  for (int64_t i = 0; i < reference.NumRows(); ++i) {
    for (size_t c = 0; c < reference.row(i).values.size(); ++c) {
      EXPECT_TRUE(Value::IdentityEquals(reference.row(i).values[c],
                                        spilled->row(i).values[c]))
          << "row " << i << " col " << c;
    }
  }
}

TEST(ExternalSortTest, ManyRunsTakeExtraMergePasses) {
  Relation r = BigTable(8, 1500);
  ResourceBudget budget;
  budget.WithMaxMemory(1024);  // tiny: dozens of runs, fan-in 8 forces passes
  SpillConfig cfg;
  cfg.enabled = true;
  OperatorStats stats;
  ExecContext ctx;
  ctx.budget = &budget;
  ctx.stats = &stats;
  ctx.spill = &cfg;
  auto out = exec::Sort(r, Asc("r1", "a"), ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(stats.sort_runs, 8u);
  EXPECT_GE(stats.sort_merge_passes, 1u);
  EXPECT_EQ(SpillFile::LiveCount(), 0u);
  EXPECT_TRUE(CheckSorted(*out, Asc("r1", "a")).ok());
}

TEST(ExternalSortTest, MemoryTripWithoutSpillingIsResourceExhausted) {
  Relation r = BigTable(9, 400);
  ResourceBudget budget;
  budget.WithMaxMemory(2 * 1024);
  ExecContext ctx;
  ctx.budget = &budget;  // no SpillConfig: the trip must surface
  auto out = exec::Sort(r, Asc("r1", "a"), ctx);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.memory_charged(), 0u);
}

TEST(ExternalSortTest, InjectedSpillFaultsDegradeToTypedErrors) {
  Relation r = BigTable(10, 600);
  int clean = 0, failed = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    FaultInjector::Options fo;
    fo.seed = seed;
    fo.period = 4;
    fo.site_mask = FaultInjector::MaskOf(
        {FaultSite::kSpillOpen, FaultSite::kSpillWrite, FaultSite::kSpillRead});
    FaultInjector fault(fo);
    ResourceBudget budget;
    budget.WithMaxMemory(4 * 1024);
    SpillConfig cfg;
    cfg.enabled = true;
    ExecContext ctx;
    ctx.budget = &budget;
    ctx.spill = &cfg;
    ctx.fault = &fault;
    auto out = exec::Sort(r, Asc("r1", "a"), ctx);
    if (out.ok()) {
      ++clean;
      EXPECT_TRUE(CheckSorted(*out, Asc("r1", "a")).ok());
    } else {
      ++failed;
      EXPECT_TRUE(out.status().code() == StatusCode::kResourceExhausted ||
                  out.status().code() == StatusCode::kUnavailable)
          << out.status().ToString();
    }
    EXPECT_EQ(SpillFile::LiveCount(), 0u) << "seed " << seed;
    EXPECT_EQ(budget.memory_charged(), 0u) << "seed " << seed;
  }
  EXPECT_GT(failed, 0) << "no injected fault ever fired; test is vacuous";
}

// --- merge join vs hash join ---

Relation JoinSideA(uint64_t seed) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = 120;
  opt.domain = 12;
  opt.null_fraction = 0.2;
  return MakeRandomRelation("r1", {"a", "b"}, opt, &rng);
}
Relation JoinSideB(uint64_t seed) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = 140;
  opt.domain = 12;
  opt.null_fraction = 0.2;
  return MakeRandomRelation("r2", {"a", "b"}, opt, &rng);
}

TEST(MergeJoinTest, BagEqualsHashJoinWithNullsAndResidual) {
  Relation a = JoinSideA(31);
  Relation b = JoinSideB(32);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"),
               MakeAtom("r1", "b", CmpOp::kLt, "r2", "b")});
  ExecContext hash_ctx;
  hash_ctx.join = JoinStrategy::kHashOnly;
  Relation hash = *exec::InnerJoin(a, b, p, hash_ctx);

  OperatorStats stats;
  ExecContext merge_ctx;
  merge_ctx.join = JoinStrategy::kMergeOnly;
  merge_ctx.stats = &stats;
  Relation merge = *exec::InnerJoin(a, b, p, merge_ctx);
  EXPECT_TRUE(stats.merge_path);
  EXPECT_TRUE(Relation::BagEquals(hash, merge));
}

TEST(MergeJoinTest, MixedIntDoubleKeysMatchHashKeyClasses) {
  // Keys mixing ints, magnitude-equal doubles, fractions and NULLs: the
  // merge join's equality partition must be AppendValueKey's, not the
  // coarser magnitude partition.
  Relation a = MakeRelation(
      "r1", {"a"},
      {{I(1)}, {D(1.0)}, {D(1.5)}, {I(kTwo53 * 2)},
       {D(static_cast<double>(kTwo53 * 2))}, {N()}, {D(std::nan(""))}});
  Relation b = MakeRelation(
      "r2", {"a"},
      {{D(1.0)}, {I(1)}, {I(kTwo53 * 2)},
       {D(static_cast<double>(kTwo53 * 2))}, {N()}, {D(std::nan(""))}});
  Predicate p(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"));
  ExecContext hash_ctx;
  hash_ctx.join = JoinStrategy::kHashOnly;
  ExecContext merge_ctx;
  merge_ctx.join = JoinStrategy::kMergeOnly;
  Relation hash = *exec::InnerJoin(a, b, p, hash_ctx);
  Relation merge = *exec::InnerJoin(a, b, p, merge_ctx);
  EXPECT_TRUE(Relation::BagEquals(hash, merge));
  EXPECT_GT(merge.NumRows(), 0);
}

TEST(MergeJoinTest, OuterJoinPaddingMatchesHash) {
  Relation a = JoinSideA(41);
  Relation b = JoinSideB(42);
  Predicate p(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"));
  for (auto flavor : {0, 1, 2}) {
    auto run = [&](JoinStrategy js) {
      ExecContext ctx;
      ctx.join = js;
      switch (flavor) {
        case 0: return exec::LeftOuterJoin(a, b, p, ctx);
        case 1: return exec::RightOuterJoin(a, b, p, ctx);
        default: return exec::FullOuterJoin(a, b, p, ctx);
      }
    };
    Relation hash = *run(JoinStrategy::kHashOnly);
    Relation merge = *run(JoinStrategy::kMergeOnly);
    EXPECT_TRUE(Relation::BagEquals(hash, merge)) << "flavor " << flavor;
  }
}

TEST(MergeJoinTest, SpilledMergeMatchesHash) {
  Relation a = JoinSideA(51);
  Relation b = JoinSideB(52);
  Predicate p(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"));
  ExecContext hash_ctx;
  hash_ctx.join = JoinStrategy::kHashOnly;
  Relation hash = *exec::InnerJoin(a, b, p, hash_ctx);

  // 8KB: small enough that each side's sort staging (~12KB) spills into
  // runs, large enough that the per-key equality blocks (~1KB per side at
  // domain 12) fit -- block staging has no spill degradation by design.
  ResourceBudget budget;
  budget.WithMaxMemory(8 * 1024);
  SpillConfig cfg;
  cfg.enabled = true;
  OperatorStats stats;
  ExecContext ctx;
  ctx.join = JoinStrategy::kMergeOnly;
  ctx.budget = &budget;
  ctx.spill = &cfg;
  ctx.stats = &stats;
  auto merge = exec::InnerJoin(a, b, p, ctx);
  ASSERT_TRUE(merge.ok()) << merge.status().ToString();
  EXPECT_TRUE(stats.spilled);
  EXPECT_GT(stats.sort_runs, 0u);
  EXPECT_EQ(SpillFile::LiveCount(), 0u);
  EXPECT_EQ(budget.memory_charged(), 0u);
  EXPECT_TRUE(Relation::BagEquals(hash, *merge));
}

// --- sorted aggregation vs hash aggregation ---

TEST(SortedAggregationTest, MatchesHashGrouping) {
  Relation r = BigTable(61, 300);
  exec::GroupBySpec spec;
  spec.group_cols.push_back(Attribute{"r1", "a"});
  exec::AggSpec agg;
  agg.func = exec::AggFunc::kSum;
  agg.input = Scalar::Column("r1", "b");
  agg.out_rel = "v";
  agg.out_name = "agg";
  spec.aggs.push_back(agg);

  ExecContext hash_ctx;
  hash_ctx.join = JoinStrategy::kHashOnly;
  Relation hash = *exec::GeneralizedProjection(r, spec, hash_ctx);

  ExecContext sorted_ctx;
  sorted_ctx.join = JoinStrategy::kMergeOnly;
  Relation sorted = *exec::GeneralizedProjection(r, spec, sorted_ctx);
  EXPECT_TRUE(Relation::BagEquals(hash, sorted));
}

TEST(SortedAggregationTest, DistinctAggMatchesHash) {
  Relation r = BigTable(62, 300);
  exec::GroupBySpec spec;
  spec.group_cols.push_back(Attribute{"r1", "a"});
  exec::AggSpec agg;
  agg.func = exec::AggFunc::kCount;
  agg.distinct = true;
  agg.input = Scalar::Column("r1", "c");
  agg.out_rel = "v";
  agg.out_name = "agg";
  spec.aggs.push_back(agg);

  ExecContext hash_ctx;
  hash_ctx.join = JoinStrategy::kHashOnly;
  Relation hash = *exec::GeneralizedProjection(r, spec, hash_ctx);
  ExecContext sorted_ctx;
  sorted_ctx.join = JoinStrategy::kMergeOnly;
  Relation sorted = *exec::GeneralizedProjection(r, spec, sorted_ctx);
  EXPECT_TRUE(Relation::BagEquals(hash, sorted));
}

}  // namespace
}  // namespace gsopt
