// Out-of-core degradation: every spilled execution must be bag-equal to
// the unlimited in-memory reference -- inner joins, outer-join padding,
// MGOJ/GS resurrection (whose matched bitmaps must stay globally indexed
// across partitions), and hash aggregation -- and every error path
// (injected ENOSPC, short writes, read faults) must unwind to a clean
// typed Status with zero leaked temp files and zero retained memory
// charges.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/fault_injector.h"
#include "base/rng.h"
#include "base/spill_file.h"
#include "exec/aggregate.h"
#include "exec/eval.h"
#include "exec/executor.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::ExecContext;
using exec::OperatorStats;
using exec::SpillConfig;

Relation BigTable(const std::string& name, uint64_t seed, int rows,
                  int domain, double null_frac = 0.15) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = domain;
  opt.null_fraction = null_frac;
  return MakeRandomRelation(name, {"a", "b", "c"}, opt, &rng);
}

SpillConfig SmallPartitions() {
  SpillConfig cfg;
  cfg.enabled = true;
  cfg.partitions = 4;  // small fan-out so multi-partition paths run
  cfg.max_recursion = 2;
  return cfg;
}

// Runs `op` twice -- unlimited in-memory reference vs. a tight memory cap
// with spilling -- and checks bag equality plus the post-run hygiene
// invariants (no live temp files, no retained budget charge). Returns the
// spilled run's stats for callers asserting on counters.
template <typename Op>
OperatorStats CheckSpilledMatchesReference(Op&& op, uint64_t cap_bytes) {
  auto reference = op(ExecContext{});
  EXPECT_TRUE(reference.ok()) << reference.status().ToString();

  ResourceBudget budget;
  budget.WithMaxMemory(cap_bytes);
  SpillConfig cfg = SmallPartitions();
  OperatorStats stats;
  ExecContext ctx;
  ctx.budget = &budget;
  ctx.stats = &stats;
  ctx.spill = &cfg;
  auto spilled = op(ctx);
  EXPECT_TRUE(spilled.ok()) << spilled.status().ToString();
  if (reference.ok() && spilled.ok()) {
    EXPECT_TRUE(Relation::BagEquals(*reference, *spilled));
  }
  EXPECT_TRUE(stats.spilled) << "cap " << cap_bytes
                             << " never tripped; test is vacuous";
  EXPECT_EQ(SpillFile::LiveCount(), 0);
  EXPECT_EQ(budget.memory_charged(), 0u);
  return stats;
}

TEST(SpillJoinTest, InnerJoinSpilledBagEqualsInMemory) {
  Relation a = BigTable("r1", 11, 300, 40);
  Relation b = BigTable("r2", 12, 300, 40);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});
  OperatorStats st = CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) { return exec::InnerJoin(a, b, p, ctx); },
      4 * 1024);
  EXPECT_GT(st.spill_partitions, 0u);
  EXPECT_GT(st.spill_bytes_written, 0u);
  EXPECT_GT(st.spill_bytes_read, 0u);
}

TEST(SpillJoinTest, ResidualPredicateSurvivesSpill) {
  Relation a = BigTable("r1", 21, 250, 20);
  Relation b = BigTable("r2", 22, 250, 20);
  // Equi-conjunct routes the hash/spill path; the inequality rides as a
  // residual evaluated per candidate pair inside each partition.
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"),
               MakeAtom("r1", "b", CmpOp::kLt, "r2", "b")});
  CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) { return exec::InnerJoin(a, b, p, ctx); },
      4 * 1024);
}

TEST(SpillJoinTest, OuterJoinPaddingSurvivesSpill) {
  // Skewed domains so both sides have unmatched rows (and NULL keys, which
  // the spill path must skip exactly like the in-memory build).
  Relation a = BigTable("r1", 31, 280, 60, 0.25);
  Relation b = BigTable("r2", 32, 280, 15, 0.25);
  Predicate p({MakeAtom("r1", "b", CmpOp::kEq, "r2", "b")});
  CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) {
        return exec::LeftOuterJoin(a, b, p, ctx);
      },
      4 * 1024);
  CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) {
        return exec::FullOuterJoin(a, b, p, ctx);
      },
      4 * 1024);
  CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) { return exec::AntiJoin(a, b, p, ctx); },
      4 * 1024);
}

TEST(SpillJoinTest, MgojResurrectionStaysGloballyIndexedAcrossPartitions) {
  // MGOJ's preserved set resurrects the UNMATCHED rows of r1: the matched
  // bitmap is indexed by original row position, so a partition that
  // matches row 250 must not accidentally mark row 0. Bag-comparing
  // against the in-memory reference catches any index translation bug.
  Relation a = BigTable("r1", 41, 260, 50, 0.2);
  Relation b = BigTable("r2", 42, 260, 12, 0.2);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});
  std::vector<exec::PreservedGroup> groups = {{"r1"}};
  CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) {
        return exec::Mgoj(a, b, p, groups, ctx);
      },
      4 * 1024);
}

TEST(SpillJoinTest, IdenticalKeySkewFallsBackToBlockChunking) {
  // Every build row carries the same key: no amount of repartitioning can
  // split it, so the join must terminate via the block-chunked fallback.
  Relation a = MakeRelation("r1", {"a"}, {});
  Relation b = MakeRelation("r2", {"a"}, {});
  for (int i = 0; i < 200; ++i) {
    a.AddBaseRow({Value::Int(7)}, i);
    b.AddBaseRow({Value::Int(7)}, i);
  }
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});
  OperatorStats st = CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) { return exec::InnerJoin(a, b, p, ctx); },
      2 * 1024);
  EXPECT_GT(st.spill_chunks, 0u) << "skew never reached the chunked path";
}

TEST(SpillAggTest, GroupBySpilledBagEqualsInMemory) {
  Relation r = BigTable("r1", 51, 400, 80, 0.2);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "a"}};
  exec::AggSpec cnt;
  cnt.func = exec::AggFunc::kCountStar;
  cnt.out_rel = "v";
  cnt.out_name = "n";
  exec::AggSpec sum;
  sum.func = exec::AggFunc::kSum;
  sum.input = Scalar::Column("r1", "b");
  sum.out_rel = "v";
  sum.out_name = "s";
  exec::AggSpec mn;
  mn.func = exec::AggFunc::kMin;
  mn.input = Scalar::Column("r1", "c");
  mn.out_rel = "v";
  mn.out_name = "m";
  spec.aggs = {cnt, sum, mn};
  spec.synthetic_vid = false;  // synthetic vids are ordinals, not stable
                               // across partition orderings
  OperatorStats st = CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) {
        return exec::GeneralizedProjection(r, spec, ctx);
      },
      4 * 1024);
  EXPECT_GT(st.spill_partitions, 0u);
}

TEST(SpillAggTest, DistinctAggSpillsByGroupKey) {
  // DISTINCT state partitions cleanly because groups are disjoint across
  // partitions; only a single irreducible group at max depth is fatal.
  Relation r = BigTable("r1", 61, 350, 60, 0.1);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "a"}};
  exec::AggSpec d;
  d.func = exec::AggFunc::kCount;
  d.distinct = true;
  d.input = Scalar::Column("r1", "b");
  d.out_rel = "v";
  d.out_name = "dc";
  spec.aggs = {d};
  spec.synthetic_vid = false;
  CheckSpilledMatchesReference(
      [&](const ExecContext& ctx) {
        return exec::GeneralizedProjection(r, spec, ctx);
      },
      4 * 1024);
}

TEST(SpillParallelTest, ParallelSpilledMatchesSerialUnlimited) {
  static exec::Executor executor(4);
  executor.set_min_parallel_rows(1);
  Relation a = BigTable("r1", 71, 320, 30);
  Relation b = BigTable("r2", 72, 320, 30);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});

  auto reference = exec::InnerJoin(a, b, p, ExecContext{});
  ASSERT_TRUE(reference.ok());

  ResourceBudget budget;
  budget.WithMaxMemory(4 * 1024);
  SpillConfig cfg = SmallPartitions();
  OperatorStats stats;
  ExecContext ctx;
  ctx.budget = &budget;
  ctx.stats = &stats;
  ctx.executor = &executor;
  ctx.spill = &cfg;
  auto spilled = exec::InnerJoin(a, b, p, ctx);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_TRUE(Relation::BagEquals(*reference, *spilled));
  EXPECT_TRUE(stats.spilled);
  EXPECT_EQ(SpillFile::LiveCount(), 0);
  EXPECT_EQ(budget.memory_charged(), 0u);
}

TEST(SpillFaultTest, MemoryTripWithoutSpillNamesTheCap) {
  Relation a = BigTable("r1", 81, 200, 30);
  Relation b = BigTable("r2", 82, 200, 30);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});
  ResourceBudget budget;
  budget.WithMaxMemory(1024);
  ExecContext ctx;
  ctx.budget = &budget;  // no spill config: the trip is fatal
  auto r = exec::InnerJoin(a, b, p, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("memory cap"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(budget.memory_charged(), 0u);
}

// Injected spill-I/O faults at every site: the join must fail with a clean
// typed status (never crash), leak no temp file, and release every memory
// charge. Seeds sweep the fault onto different operations.
TEST(SpillFaultTest, InjectedSpillFaultsUnwindCleanly) {
  Relation a = BigTable("r1", 91, 260, 30);
  Relation b = BigTable("r2", 92, 260, 30);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")});
  const FaultSite sites[] = {FaultSite::kSpillOpen, FaultSite::kSpillWrite,
                             FaultSite::kSpillRead};
  int failures_seen = 0;
  for (FaultSite site : sites) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      FaultInjector::Options o;
      o.seed = seed;
      o.period = 5;
      o.site_mask = FaultInjector::MaskOf({site});
      FaultInjector fi(o);
      ResourceBudget budget;
      budget.WithMaxMemory(4 * 1024);
      SpillConfig cfg = SmallPartitions();
      ExecContext ctx;
      ctx.budget = &budget;
      ctx.fault = &fi;
      ctx.spill = &cfg;
      auto r = exec::InnerJoin(a, b, p, ctx);
      if (!r.ok()) {
        ++failures_seen;
        EXPECT_TRUE(r.status().code() == StatusCode::kResourceExhausted ||
                    r.status().code() == StatusCode::kUnavailable)
            << FaultSiteName(site) << " seed " << seed << ": "
            << r.status().ToString();
      }
      EXPECT_EQ(SpillFile::LiveCount(), 0)
          << FaultSiteName(site) << " seed " << seed << " leaked a file";
      EXPECT_EQ(budget.memory_charged(), 0u)
          << FaultSiteName(site) << " seed " << seed << " leaked a charge";
    }
  }
  // The spill path runs on every seed (the cap is tight), so faults with
  // period 5 must have landed often.
  EXPECT_GT(failures_seen, 0);
}

TEST(SpillFaultTest, AggregationFaultsUnwindCleanly) {
  Relation r = BigTable("r1", 95, 300, 60, 0.1);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "a"}};
  exec::AggSpec cnt;
  cnt.func = exec::AggFunc::kCountStar;
  cnt.out_rel = "v";
  cnt.out_name = "n";
  spec.aggs = {cnt};
  spec.synthetic_vid = false;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultInjector::Options o;
    o.seed = seed;
    o.period = 7;
    FaultInjector fi(o);
    ResourceBudget budget;
    budget.WithMaxMemory(2 * 1024);
    SpillConfig cfg = SmallPartitions();
    ExecContext ctx;
    ctx.budget = &budget;
    ctx.fault = &fi;
    ctx.spill = &cfg;
    auto out = exec::GeneralizedProjection(r, spec, ctx);
    if (!out.ok()) {
      EXPECT_TRUE(out.status().code() == StatusCode::kResourceExhausted ||
                  out.status().code() == StatusCode::kUnavailable)
          << "seed " << seed << ": " << out.status().ToString();
    }
    EXPECT_EQ(SpillFile::LiveCount(), 0) << "seed " << seed;
    EXPECT_EQ(budget.memory_charged(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gsopt
