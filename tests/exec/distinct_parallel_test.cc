// DISTINCT aggregates with the parallel executor selected through
// ExecuteOptions: per-lane distinct sets cannot be merged, so the kernel
// must fall back to the serial path -- with results identical to a serial
// run and OperatorStats still collected and merged for the whole plan.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "exec/aggregate.h"
#include "exec/executor.h"
#include "relational/datagen.h"
#include "sql/binder.h"

namespace gsopt {
namespace {

// Thresholds forced low so test-sized inputs would take the parallel
// paths anywhere they exist.
exec::Executor* TestExecutor() {
  static exec::Executor* ex = [] {
    auto* e = new exec::Executor(4);
    e->set_min_parallel_rows(1);
    e->set_morsel_rows(7);
    return e;
  }();
  return ex;
}

Catalog MakeCatalog(uint64_t seed) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = 150;
  opt.domain = 5;
  opt.null_fraction = 0.25;
  AddRandomTables(2, opt, &rng, &cat);
  return cat;
}

// A GROUP BY view with a DISTINCT aggregate, joined above so the plan
// also contains operators that DO parallelize.
NodePtr DistinctViewQuery(const Catalog& cat, exec::AggFunc func) {
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "b"}};
  exec::AggSpec agg;
  agg.func = func;
  agg.distinct = true;
  agg.input = Scalar::Column("r1", "a");
  agg.out_rel = "v";
  agg.out_name = "agg";
  spec.aggs = {std::move(agg)};
  NodePtr view = Node::GroupBy(Node::Leaf("r1"), spec);
  return Node::Join(view, Node::Leaf("r2"),
                    Predicate(MakeAtom("v", "agg", CmpOp::kEq, "r2", "b")));
}

TEST(DistinctParallelTest, DistinctAggFallsBackSerialWithIdenticalResults) {
  for (exec::AggFunc func :
       {exec::AggFunc::kCount, exec::AggFunc::kSum, exec::AggFunc::kAvg}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      Catalog cat = MakeCatalog(seed);
      NodePtr q = DistinctViewQuery(cat, func);

      auto serial = Execute(q, cat);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();

      ExecuteOptions popt;
      popt.executor = TestExecutor();
      auto parallel = Execute(q, cat, popt);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

      EXPECT_TRUE(Relation::BagEquals(*serial, *parallel))
          << exec::AggFuncName(func) << " seed " << seed;
    }
  }
}

TEST(DistinctParallelTest, StatsAreMergedUnderParallelExecutor) {
  Catalog cat = MakeCatalog(7);
  NodePtr q = DistinctViewQuery(cat, exec::AggFunc::kCount);

  exec::OperatorStats serial_stats;
  ExecuteOptions sopt;
  sopt.stats = &serial_stats;
  auto serial = Execute(q, cat, sopt);
  ASSERT_TRUE(serial.ok());

  exec::OperatorStats par_stats;
  ExecuteOptions popt;
  popt.stats = &par_stats;
  popt.executor = TestExecutor();
  auto parallel = Execute(q, cat, popt);
  ASSERT_TRUE(parallel.ok());

  // The stats tree shape is the plan shape, independent of executor; the
  // count-exact totals must agree between the serial run and the merged
  // per-lane counters of the parallel run.
  ASSERT_EQ(serial_stats.children.size(), par_stats.children.size());
  EXPECT_EQ(serial_stats.rows_in, par_stats.rows_in);
  EXPECT_EQ(serial_stats.rows_out, par_stats.rows_out);
  EXPECT_EQ(serial_stats.rows_out,
            static_cast<uint64_t>(parallel->NumRows()));

  // The DISTINCT group-by child ran (rows flowed through it) on both.
  bool found_groupby = false;
  for (const auto& child : serial_stats.children) {
    if (child->op == "GP") found_groupby = true;
  }
  for (const auto& child : par_stats.children) {
    if (child->op == "GP") {
      EXPECT_GT(child->rows_in, 0u);
    }
  }
  EXPECT_TRUE(found_groupby);
}

}  // namespace
}  // namespace gsopt
