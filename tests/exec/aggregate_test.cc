#include "exec/aggregate.h"

#include <gtest/gtest.h>

#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::AggFunc;
using exec::AggSpec;
using exec::GeneralizedProjection;
using exec::GroupBySpec;

Value I(int64_t v) { return Value::Int(v); }
Value N() { return Value::Null(); }

Relation Sales() {
  return MakeRelation("s", {"k", "v"},
                      {{I(1), I(10)},
                       {I(1), I(20)},
                       {I(2), I(5)},
                       {I(2), N()},
                       {I(3), N()}});
}

AggSpec Agg(AggFunc f, bool distinct = false) {
  AggSpec a;
  a.func = f;
  a.distinct = distinct;
  if (f != AggFunc::kCountStar) a.input = Scalar::Column("s", "v");
  a.out_rel = "q";
  a.out_name = "agg";
  return a;
}

GroupBySpec ByK(AggSpec agg) {
  GroupBySpec spec;
  spec.group_cols = {Attribute{"s", "k"}};
  spec.aggs = {std::move(agg)};
  return spec;
}

int64_t GroupValue(const Relation& r, int64_t k) {
  for (const Tuple& t : r.rows()) {
    if (!t.values[0].is_null() && t.values[0].AsInt() == k) {
      return t.values[1].is_null() ? -999 : t.values[1].AsInt();
    }
  }
  return -1000;
}

TEST(GeneralizedProjectionTest, CountStarCountsRows) {
  Relation g = *GeneralizedProjection(Sales(), ByK(Agg(AggFunc::kCountStar)));
  EXPECT_EQ(g.NumRows(), 3);
  EXPECT_EQ(GroupValue(g, 1), 2);
  EXPECT_EQ(GroupValue(g, 2), 2);
  EXPECT_EQ(GroupValue(g, 3), 1);
}

TEST(GeneralizedProjectionTest, CountColumnSkipsNulls) {
  Relation g = *GeneralizedProjection(Sales(), ByK(Agg(AggFunc::kCount)));
  EXPECT_EQ(GroupValue(g, 1), 2);
  EXPECT_EQ(GroupValue(g, 2), 1);
  EXPECT_EQ(GroupValue(g, 3), 0);  // all inputs NULL -> COUNT = 0
}

TEST(GeneralizedProjectionTest, SumSkipsNullsAndEmptyIsNull) {
  Relation g = *GeneralizedProjection(Sales(), ByK(Agg(AggFunc::kSum)));
  EXPECT_EQ(GroupValue(g, 1), 30);
  EXPECT_EQ(GroupValue(g, 2), 5);
  EXPECT_EQ(GroupValue(g, 3), -999);  // SUM over all-NULL group is NULL
}

TEST(GeneralizedProjectionTest, MinMax) {
  Relation gmin = *GeneralizedProjection(Sales(), ByK(Agg(AggFunc::kMin)));
  Relation gmax = *GeneralizedProjection(Sales(), ByK(Agg(AggFunc::kMax)));
  EXPECT_EQ(GroupValue(gmin, 1), 10);
  EXPECT_EQ(GroupValue(gmax, 1), 20);
  EXPECT_EQ(GroupValue(gmin, 3), -999);  // NULL
}

TEST(GeneralizedProjectionTest, Avg) {
  Relation g = *GeneralizedProjection(Sales(), ByK(Agg(AggFunc::kAvg)));
  for (const Tuple& t : g.rows()) {
    if (t.values[0].AsInt() == 1) {
      EXPECT_DOUBLE_EQ(t.values[1].AsDouble(), 15.0);
    }
  }
}

TEST(GeneralizedProjectionTest, CountDistinct) {
  Relation r = MakeRelation("s", {"k", "v"},
                            {{I(1), I(7)}, {I(1), I(7)}, {I(1), I(8)}});
  Relation g =
      *GeneralizedProjection(r, ByK(Agg(AggFunc::kCount, /*distinct=*/true)));
  EXPECT_EQ(GroupValue(g, 1), 2);
}

TEST(GeneralizedProjectionTest, SumDistinct) {
  Relation r = MakeRelation("s", {"k", "v"},
                            {{I(1), I(7)}, {I(1), I(7)}, {I(1), I(8)}});
  Relation g =
      *GeneralizedProjection(r, ByK(Agg(AggFunc::kSum, /*distinct=*/true)));
  EXPECT_EQ(GroupValue(g, 1), 15);
}

TEST(GeneralizedProjectionTest, NullGroupKeysFormOneGroup) {
  // SQL GROUP BY treats NULLs as equal.
  Relation r = MakeRelation("s", {"k", "v"}, {{N(), I(1)}, {N(), I(2)}});
  Relation g = *GeneralizedProjection(r, ByK(Agg(AggFunc::kCountStar)));
  EXPECT_EQ(g.NumRows(), 1);
  EXPECT_EQ(g.row(0).values[1].AsInt(), 2);
}

TEST(GeneralizedProjectionTest, NoAggregatesIsSelectDistinct) {
  Relation r = MakeRelation("s", {"k", "v"},
                            {{I(1), I(9)}, {I(1), I(8)}, {I(2), I(7)}});
  GroupBySpec spec;
  spec.group_cols = {Attribute{"s", "k"}};
  Relation g = *GeneralizedProjection(r, spec);
  EXPECT_EQ(g.NumRows(), 2);
  EXPECT_EQ(g.schema().size(), 1);
}

TEST(GeneralizedProjectionTest, GroupOnVirtualAttributeKeepsBaseRows) {
  // Example 3.1 style: grouping on V(r3) (plus r3's columns) keeps one
  // output row per r3 base row even when real attribute values collide.
  Relation r3 = MakeRelation("r3", {"e"}, {{I(1)}, {I(1)}});
  GroupBySpec spec;
  spec.group_cols = {Attribute{"r3", "e"}};
  spec.group_vid_rels = {"r3"};
  AggSpec cnt;
  cnt.func = AggFunc::kCountStar;
  cnt.out_rel = "q";
  cnt.out_name = "c";
  spec.aggs = {cnt};
  Relation g = *GeneralizedProjection(r3, spec);
  EXPECT_EQ(g.NumRows(), 2);  // virtual attr separates the duplicates
  // r3's grouping vid plus the synthetic per-group vid under "q".
  EXPECT_EQ(g.vschema().size(), 2);
  EXPECT_EQ(g.vschema().rel(0), "r3");
  EXPECT_EQ(g.vschema().rel(1), "q");
  EXPECT_EQ(g.row(0).vids[1], 0);
  EXPECT_EQ(g.row(1).vids[1], 1);
}

TEST(GeneralizedProjectionTest, CountOverOuterJoinPaddingIsZero) {
  // The pattern unnesting relies on (paper §1.1): LOJ then COUNT(key of the
  // null-supplying side) yields 0 for unmatched preserved tuples, exactly
  // the COUNT-bug-safe behaviour.
  Relation a = MakeRelation("a", {"k"}, {{I(1)}, {I(2)}});
  Relation b = MakeRelation("b", {"k"}, {{I(1)}, {I(1)}});
  Predicate p(MakeAtom("a", "k", CmpOp::kEq, "b", "k"));
  Relation loj = *exec::LeftOuterJoin(a, b, p);
  GroupBySpec spec;
  spec.group_cols = {Attribute{"a", "k"}};
  AggSpec cnt;
  cnt.func = AggFunc::kCount;
  cnt.input = Scalar::Column("b", "k");
  cnt.out_rel = "q";
  cnt.out_name = "c";
  spec.aggs = {cnt};
  Relation g = *GeneralizedProjection(loj, spec);
  EXPECT_EQ(g.NumRows(), 2);
  for (const Tuple& t : g.rows()) {
    int64_t k = t.values[0].AsInt();
    int64_t c = t.values[1].AsInt();
    EXPECT_EQ(c, k == 1 ? 2 : 0);
  }
}

TEST(GeneralizedProjectionTest, MultipleAggregates) {
  GroupBySpec spec;
  spec.group_cols = {Attribute{"s", "k"}};
  AggSpec c1 = Agg(AggFunc::kCount);
  c1.out_name = "cnt";
  AggSpec c2 = Agg(AggFunc::kSum);
  c2.out_name = "total";
  spec.aggs = {c1, c2};
  Relation g = *GeneralizedProjection(Sales(), spec);
  EXPECT_EQ(g.schema().size(), 3);
  EXPECT_EQ(g.NumRows(), 3);
}

TEST(DuplicateInsensitivityTest, Classification) {
  // delta vs pi in the paper's terminology.
  EXPECT_TRUE(exec::IsDuplicateInsensitive(AggFunc::kMin, false));
  EXPECT_TRUE(exec::IsDuplicateInsensitive(AggFunc::kMax, false));
  EXPECT_TRUE(exec::IsDuplicateInsensitive(AggFunc::kCount, true));
  EXPECT_TRUE(exec::IsDuplicateInsensitive(AggFunc::kSum, true));
  EXPECT_FALSE(exec::IsDuplicateInsensitive(AggFunc::kCount, false));
  EXPECT_FALSE(exec::IsDuplicateInsensitive(AggFunc::kSum, false));
  EXPECT_FALSE(exec::IsDuplicateInsensitive(AggFunc::kCountStar, false));
}

TEST(GroupBySpecTest, ToStringMentionsPieces) {
  GroupBySpec spec = ByK(Agg(AggFunc::kCount));
  std::string s = spec.ToString();
  EXPECT_NE(s.find("s.k"), std::string::npos);
  EXPECT_NE(s.find("COUNT"), std::string::npos);
}

}  // namespace
}  // namespace gsopt
