// Tests for generalized selection (paper Definition 2.1), its definitional
// identities (joins as GS over a cartesian product), MGOJ, and the paper's
// Example 2.1 (experiment E1 in DESIGN.md).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::FullOuterJoin;
using exec::GeneralizedSelection;
using exec::InnerJoin;
using exec::LeftOuterJoin;
using exec::Mgoj;
using exec::PreservedGroup;
using exec::Product;
using exec::Select;

Value I(int64_t v) { return Value::Int(v); }

Relation RA() {
  return MakeRelation("ra", {"x"}, {{I(1)}, {I(2)}, {I(2)}, {I(3)}});
}
Relation RB() {
  return MakeRelation("rb", {"x"}, {{I(2)}, {I(3)}, {I(5)}});
}

Predicate EqX() {
  return Predicate(MakeAtom("ra", "x", CmpOp::kEq, "rb", "x"));
}

// --- Definition 2.1 basics -------------------------------------------------

TEST(GeneralizedSelectionTest, NoGroupsIsPlainSelection) {
  Relation p = *Product(RA(), RB());
  Relation gs = *GeneralizedSelection(p, EqX(), {});
  EXPECT_TRUE(Relation::BagEquals(gs, *Select(p, EqX())));
}

TEST(GeneralizedSelectionTest, JoinIsGsOnProductWithNoPreserved) {
  // r1 JOIN_p r2 == sigma*_p[](r1 x r2)
  Relation gs = *GeneralizedSelection(*Product(RA(), RB()), EqX(), {});
  EXPECT_TRUE(Relation::BagEquals(gs, *InnerJoin(RA(), RB(), EqX())));
}

TEST(GeneralizedSelectionTest, LojIsGsOnProductPreservingLeft) {
  // r1 LOJ_p r2 == sigma*_p[r1](r1 x r2) (non-empty inputs)
  Relation gs =
      *GeneralizedSelection(*Product(RA(), RB()), EqX(), {PreservedGroup{"ra"}});
  EXPECT_TRUE(Relation::BagEquals(gs, *LeftOuterJoin(RA(), RB(), EqX())));
}

TEST(GeneralizedSelectionTest, FojIsGsOnProductPreservingBoth) {
  // r1 FOJ_p r2 == sigma*_p[r1, r2](r1 x r2) (non-empty inputs)
  Relation gs = *GeneralizedSelection(
      *Product(RA(), RB()), EqX(),
      {PreservedGroup{"ra"}, PreservedGroup{"rb"}});
  EXPECT_TRUE(Relation::BagEquals(gs, *FullOuterJoin(RA(), RB(), EqX())));
}

TEST(GeneralizedSelectionTest, DuplicatePreservedTuplesResurrectOncePerRowId) {
  // RA contains the value 2 twice (distinct row ids). Preserving {ra}
  // against a never-true predicate must resurrect BOTH duplicates: the
  // paper's pi_{Ri,Vi} projection includes virtual attributes.
  Predicate never(MakeConstAtom("ra", "x", CmpOp::kLt, I(0)));
  Relation gs = *GeneralizedSelection(*Product(RA(), RB()), never,
                                     {PreservedGroup{"ra"}});
  EXPECT_EQ(gs.NumRows(), 4);
}

TEST(GeneralizedSelectionTest, EmptyProductEdgeCaseDivergesFromLoj) {
  // Documented divergence (DESIGN.md): the cartesian-product definition of
  // LOJ breaks when the null-supplying side is empty, because pi(r1 x {})
  // is empty. The binary operator preserves; the literal GS does not.
  Relation empty = MakeRelation("rb", {"x"}, {});
  Relation loj = *LeftOuterJoin(RA(), empty, EqX());
  Relation gs = *GeneralizedSelection(*Product(RA(), empty), EqX(),
                                     {PreservedGroup{"ra"}});
  EXPECT_EQ(loj.NumRows(), 4);
  EXPECT_EQ(gs.NumRows(), 0);
}

TEST(GeneralizedSelectionTest, PreservingCompositeGroup) {
  // Preserve the composite relation {ra, rb} of a 3-way product against a
  // predicate on rc: resurrected tuples keep ra AND rb values together.
  Relation rc = MakeRelation("rc", {"y"}, {{I(1)}});
  Relation p = *Product(*Product(RA(), RB()), rc);
  Predicate never(MakeConstAtom("rc", "y", CmpOp::kLt, I(0)));
  Relation gs = *GeneralizedSelection(p, never, {PreservedGroup{"ra", "rb"}});
  // 4*3 = 12 distinct (ra,rb) combinations resurrected, rc NULL.
  EXPECT_EQ(gs.NumRows(), 12);
  for (const Tuple& t : gs.rows()) {
    EXPECT_FALSE(t.values[0].is_null());
    EXPECT_FALSE(t.values[1].is_null());
    EXPECT_TRUE(t.values[2].is_null());
  }
}

TEST(GeneralizedSelectionTest, SchemaUnchanged) {
  Relation p = *Product(RA(), RB());
  Relation gs = *GeneralizedSelection(p, EqX(), {PreservedGroup{"ra"}});
  EXPECT_EQ(gs.schema().ToString(), p.schema().ToString());
  EXPECT_TRUE(gs.vschema() == p.vschema());
}

// --- MGOJ ------------------------------------------------------------------

TEST(MgojTest, MatchesGsOnProductRandomized) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    RandomRelationOptions opt;
    opt.num_rows = 1 + static_cast<int>(rng.Uniform(1, 12));
    opt.domain = 4;
    opt.null_fraction = 0.15;
    Relation a = MakeRandomRelation("s1", {"a", "b"}, opt, &rng);
    Relation b = MakeRandomRelation("s2", {"a", "b"}, opt, &rng);
    Predicate p(MakeAtom("s1", "a", CmpOp::kEq, "s2", "a"));
    for (const auto& groups :
         std::vector<std::vector<PreservedGroup>>{
             {},
             {PreservedGroup{"s1"}},
             {PreservedGroup{"s2"}},
             {PreservedGroup{"s1"}, PreservedGroup{"s2"}}}) {
      Relation m = *Mgoj(a, b, p, groups);
      Relation g = *GeneralizedSelection(*Product(a, b), p, groups);
      EXPECT_TRUE(Relation::BagEquals(m, g))
          << "trial " << trial << " groups " << groups.size();
    }
  }
}

TEST(MgojTest, NoGroupsIsInnerJoin) {
  Relation m = *Mgoj(RA(), RB(), EqX(), {});
  EXPECT_TRUE(Relation::BagEquals(m, *InnerJoin(RA(), RB(), EqX())));
}

TEST(MgojTest, PreservesLeftAcrossEmptyRight) {
  // Binary-operator semantics: preservation applies even with an empty
  // other side (unlike the literal product formulation).
  Relation empty = MakeRelation("rb", {"x"}, {});
  Relation m = *Mgoj(RA(), empty, EqX(), {PreservedGroup{"ra"}});
  EXPECT_TRUE(
      Relation::BagEquals(m, *LeftOuterJoin(RA(), empty, EqX())));
}

TEST(MgojTest, FullPreservationEqualsFoj) {
  Relation m = *Mgoj(RA(), RB(), EqX(),
                    {PreservedGroup{"ra"}, PreservedGroup{"rb"}});
  EXPECT_TRUE(Relation::BagEquals(m, *FullOuterJoin(RA(), RB(), EqX())));
}

// --- Paper Example 2.1 (experiment E1) --------------------------------------
//
// Relations (values renamed to integers: a1=1, a2=2, ..., f3=3):
//   r1(a,b,c,f) = {(1,1,1,1), (2,1,1,2), (2,1,2,2)}
//   r2(c,d,e)   = {(1,1,1)}
//   r3(e,f)     = {(1,1), (1,3)}
// Predicates: p12: r1.c=r2.c, p13: r1.f=r3.f, p23: r2.e=r3.e.

struct Example21 {
  Relation r1 = MakeRelation(
      "r1", {"a", "b", "c", "f"},
      {{I(1), I(1), I(1), I(1)}, {I(2), I(1), I(1), I(2)},
       {I(2), I(1), I(2), I(2)}});
  Relation r2 = MakeRelation("r2", {"c", "d", "e"}, {{I(1), I(1), I(1)}});
  Relation r3 = MakeRelation("r3", {"e", "f"}, {{I(1), I(1)}, {I(1), I(3)}});
  Predicate p12 = Predicate(MakeAtom("r1", "c", CmpOp::kEq, "r2", "c"));
  Predicate p13 = Predicate(MakeAtom("r1", "f", CmpOp::kEq, "r3", "f"));
  Predicate p23 = Predicate(MakeAtom("r2", "e", CmpOp::kEq, "r3", "e"));
};

TEST(PaperExample21, T1AsWritten) {
  Example21 ex;
  // T1 = (r1 LOJ_p12 r2) LOJ_{p13 ^ p23} r3  -- three rows, exactly as the
  // paper's table T1.
  Relation t1 = *LeftOuterJoin(*LeftOuterJoin(ex.r1, ex.r2, ex.p12), ex.r3,
                              Predicate::And(ex.p13, ex.p23));
  EXPECT_EQ(t1.NumRows(), 3);
  Relation expected = t1;  // verify row-by-row below instead
  int matched = 0, padded_r3 = 0, padded_r2r3 = 0;
  for (const Tuple& t : t1.rows()) {
    bool r2_null = t.values[4].is_null();
    bool r3_null = t.values[7].is_null();
    if (!r2_null && !r3_null) ++matched;
    if (!r2_null && r3_null) ++padded_r3;
    if (r2_null && r3_null) ++padded_r2r3;
  }
  EXPECT_EQ(matched, 1);      // (a1,b1,c1,f1, c1,d1,e1, e1,f1)
  EXPECT_EQ(padded_r3, 1);    // (a2,b1,c1,f2, c1,d1,e1, -,-)
  EXPECT_EQ(padded_r2r3, 1);  // (a2,b1,c2,f2, -,-,-, -,-)
}

TEST(PaperExample21, T2BreaksWithoutCompensation) {
  Example21 ex;
  Relation t2 = *LeftOuterJoin(*LeftOuterJoin(ex.r1, ex.r2, ex.p12), ex.r3,
                              ex.p23);
  Relation t1 = *LeftOuterJoin(*LeftOuterJoin(ex.r1, ex.r2, ex.p12), ex.r3,
                              Predicate::And(ex.p13, ex.p23));
  // Dropping p13 from the outer join changes the result (t2 over-matches).
  EXPECT_FALSE(Relation::BagEquals(t1, t2));
  EXPECT_EQ(t2.NumRows(), 5);  // both r1-c1 rows match both r3 rows
}

TEST(PaperExample21, GsCompensationRecoversT1) {
  Example21 ex;
  Relation t2 = *LeftOuterJoin(*LeftOuterJoin(ex.r1, ex.r2, ex.p12), ex.r3,
                              ex.p23);
  Relation t1 = *LeftOuterJoin(*LeftOuterJoin(ex.r1, ex.r2, ex.p12), ex.r3,
                              Predicate::And(ex.p13, ex.p23));
  // sigma*_{p13}[r1 r2](T2) == T1: the paper's headline compensation.
  Relation fixed =
      *GeneralizedSelection(t2, ex.p13, {PreservedGroup{"r1", "r2"}});
  EXPECT_TRUE(Relation::BagEquals(fixed, t1));
}

TEST(PaperExample21, WrongPreservedSetDoesNotRecoverT1) {
  Example21 ex;
  Relation t2 = *LeftOuterJoin(*LeftOuterJoin(ex.r1, ex.r2, ex.p12), ex.r3,
                              ex.p23);
  Relation t1 = *LeftOuterJoin(*LeftOuterJoin(ex.r1, ex.r2, ex.p12), ex.r3,
                              Predicate::And(ex.p13, ex.p23));
  // Preserving only r1 (instead of the composite r1r2) loses r2 values on
  // resurrected tuples -- the preserved-set computation matters.
  Relation wrong = *GeneralizedSelection(t2, ex.p13, {PreservedGroup{"r1"}});
  EXPECT_FALSE(Relation::BagEquals(wrong, t1));
}

}  // namespace
}  // namespace gsopt
