// Columnar-vs-tuple differential suite for the batch kernel paths
// (exec/columnar.cc): forcing BatchMode::kForce must reproduce the
// tuple-at-a-time reference kernels (BatchMode::kOff) on every shape --
// selection (exact row order), hash joins of every flavor (bag equality),
// hash aggregation, and the parallel twins -- across batch-boundary sizes,
// NULL-heavy data, mixed-type columns, fallback atoms, and the memory-cap
// spill degradation. Also unit-tests the ColumnBatch gather/materialize
// round trip and the compiled-filter / batch-key building blocks directly.
#include "exec/columnar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/budget.h"
#include "base/rng.h"
#include "exec/aggregate.h"
#include "exec/eval.h"
#include "exec/executor.h"
#include "relational/column_batch.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::AggFunc;
using exec::AggSpec;
using exec::AntiJoin;
using exec::BatchMode;
using exec::ExecContext;
using exec::Executor;
using exec::FullOuterJoin;
using exec::GeneralizedProjection;
using exec::GroupBySpec;
using exec::InnerJoin;
using exec::LeftOuterJoin;
using exec::OperatorStats;
using exec::RightOuterJoin;
using exec::Select;
using exec::SemiJoin;
using exec::SpillConfig;
using exec::internal::ApplyFilter;
using exec::internal::CompiledFilter;
using exec::internal::CompileFilter;

Value I(int64_t v) { return Value::Int(v); }
Value D(double v) { return Value::Double(v); }
Value S(std::string v) { return Value::String(std::move(v)); }
Value N() { return Value::Null(); }

ExecContext Forced() {
  ExecContext ctx;
  ctx.batch = BatchMode::kForce;
  return ctx;
}

ExecContext Reference() {
  ExecContext ctx;
  ctx.batch = BatchMode::kOff;
  return ctx;
}

Relation RandomRel(const std::string& name, int rows, uint64_t seed,
                   int64_t domain = 6, double null_fraction = 0.25) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = domain;
  opt.null_fraction = null_fraction;
  return MakeRandomRelation(name, {"a", "b"}, opt, &rng);
}

// ---------------------------------------------------------------------------
// ColumnBatch: gather / materialize round trip.
// ---------------------------------------------------------------------------

TEST(ColumnBatchTest, FromRowsRoundTripsValuesAndVids) {
  Relation r = MakeRelation("r", {"x", "y"},
                            {{I(1), D(1.5)},
                             {N(), S("hi")},
                             {I(3), N()},
                             {D(4.25), I(-7)}});
  ColumnBatch batch = ColumnBatch::FromRows(r, 0, r.NumRows());
  ASSERT_EQ(batch.NumRows(), r.NumRows());
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    Tuple t = batch.MaterializeRow(i);
    ASSERT_EQ(t.values.size(), r.row(i).values.size());
    for (size_t c = 0; c < t.values.size(); ++c) {
      EXPECT_TRUE(Value::IdentityEquals(t.values[c], r.row(i).values[c]))
          << "row " << i << " col " << c;
    }
    EXPECT_EQ(t.vids, r.row(i).vids);
  }
  Relation out(r.schema(), r.vschema());
  batch.AppendTo(&out);
  EXPECT_TRUE(Relation::BagEquals(r, out));
}

TEST(ColumnBatchTest, KindDetectionPerBatch) {
  Relation r = MakeRelation("r", {"i", "d", "s", "m", "n"},
                            {{I(1), D(0.5), S("a"), I(1), N()},
                             {I(2), N(), S("b"), S("x"), N()},
                             {N(), D(2.5), N(), D(3.0), N()}});
  EXPECT_EQ(GatherColumn(r, 0, 0, 3).kind, ColumnKind::kInt64);
  EXPECT_EQ(GatherColumn(r, 1, 0, 3).kind, ColumnKind::kDouble);
  EXPECT_EQ(GatherColumn(r, 2, 0, 3).kind, ColumnKind::kString);
  EXPECT_EQ(GatherColumn(r, 3, 0, 3).kind, ColumnKind::kMixed);
  // All-NULL gathers to the cheapest representation.
  EXPECT_EQ(GatherColumn(r, 4, 0, 3).kind, ColumnKind::kInt64);
  // Kind is decided per batch, not per column globally: the mixed column's
  // first row alone is pure int.
  EXPECT_EQ(GatherColumn(r, 3, 0, 1).kind, ColumnKind::kInt64);
  Column c = GatherColumn(r, 0, 0, 3);
  EXPECT_TRUE(c.has_nulls);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(2));
}

// ---------------------------------------------------------------------------
// Compiled filter: exact-order equality with the reference Select across
// predicate shapes and batch-boundary sizes.
// ---------------------------------------------------------------------------

void ExpectSelectExactlyMatches(const Relation& r, const Predicate& p) {
  StatusOr<Relation> ref = Select(r, p, Reference());
  StatusOr<Relation> col = Select(r, p, Forced());
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(col.ok());
  ASSERT_EQ(ref->NumRows(), col->NumRows()) << p.ToString();
  // ColumnarSelect guarantees the exact reference order, not just the bag.
  for (int64_t i = 0; i < ref->NumRows(); ++i) {
    for (size_t c = 0; c < ref->row(i).values.size(); ++c) {
      EXPECT_TRUE(Value::IdentityEquals(ref->row(i).values[c],
                                        col->row(i).values[c]))
          << p.ToString() << " row " << i;
    }
    EXPECT_EQ(ref->row(i).vids, col->row(i).vids);
  }
}

TEST(ColumnarSelectTest, PredicateShapesMatchReference) {
  Relation r = RandomRel("ra", 300, 7);
  std::vector<Predicate> preds;
  preds.emplace_back(MakeAtom("ra", "a", CmpOp::kLt, "ra", "b"));
  preds.emplace_back(MakeConstAtom("ra", "a", CmpOp::kGe, I(3)));
  preds.emplace_back(MakeConstAtom("ra", "a", CmpOp::kNe, D(2.0)));
  preds.emplace_back(MakeIsNullAtom("ra", "a", /*negated=*/false));
  preds.emplace_back(MakeIsNullAtom("ra", "b", /*negated=*/true));
  preds.push_back(Predicate::True());
  preds.emplace_back(MakeTautologyAtom());
  // Comparison against a NULL constant is never TRUE (compiles to kNever).
  preds.emplace_back(MakeConstAtom("ra", "a", CmpOp::kEq, N()));
  // Unresolvable column: Scalar::Eval yields NULL, the compiler folds it.
  preds.emplace_back(MakeAtom("ra", "a", CmpOp::kEq, "zz", "q"));
  preds.emplace_back(MakeIsNullAtom("zz", "q", /*negated=*/false));
  // Arithmetic operand: exercises the per-row fallback atom.
  {
    Predicate p;
    p.AddAtom(Atom{Atom::Kind::kCompare,
                   Scalar::Arith(ArithOp::kAdd, Scalar::Column("ra", "a"),
                                 Scalar::Const(I(1))),
                   CmpOp::kLe, Scalar::Column("ra", "b")});
    preds.push_back(p);
  }
  // Conjunction mixing native and fallback atoms.
  {
    Predicate p(MakeConstAtom("ra", "a", CmpOp::kGt, I(0)));
    p.AddAtom(Atom{Atom::Kind::kCompare,
                   Scalar::Arith(ArithOp::kMul, Scalar::Column("ra", "b"),
                                 Scalar::Const(I(2))),
                   CmpOp::kGt, Scalar::Column("ra", "a")});
    preds.push_back(p);
  }
  for (const Predicate& p : preds) ExpectSelectExactlyMatches(r, p);
}

TEST(ColumnarSelectTest, BatchBoundarySizesMatchReference) {
  Predicate p(MakeAtom("ra", "a", CmpOp::kLe, "ra", "b"));
  for (int rows : {0, 1, 127, 128, 2047, 2048, 2049, 4097}) {
    ExpectSelectExactlyMatches(RandomRel("ra", rows, 11 + rows), p);
  }
}

TEST(ColumnarSelectTest, MixedTypeColumnsMatchReference) {
  // One column holding ints, doubles, strings and NULLs in one batch:
  // forces the kMixed per-value path and the typed-incomparable rules.
  Relation r = MakeRelation("ra", {"a", "b"},
                            {{I(1), I(1)},
                             {D(1.0), S("1")},
                             {S("x"), S("x")},
                             {N(), I(0)},
                             {D(0.5), D(0.25)},
                             {I(-3), D(-3.0)}});
  ExpectSelectExactlyMatches(r, Predicate(MakeAtom("ra", "a", CmpOp::kEq,
                                                   "ra", "b")));
  ExpectSelectExactlyMatches(r, Predicate(MakeAtom("ra", "a", CmpOp::kLt,
                                                   "ra", "b")));
  ExpectSelectExactlyMatches(r, Predicate(MakeConstAtom("ra", "a", CmpOp::kEq,
                                                        S("x"))));
}

TEST(ColumnarSelectTest, AutoThresholdUsesColumnarPathAndRecordsStats) {
  Relation big = RandomRel("ra", 500, 3);
  Predicate p(MakeConstAtom("ra", "a", CmpOp::kGe, I(2)));
  OperatorStats st;
  ExecContext ctx;
  ctx.stats = &st;
  ASSERT_TRUE(Select(big, p, ctx).ok());
  EXPECT_TRUE(st.columnar);
  EXPECT_GT(st.batches, 0u);
  // Below the kAuto threshold the reference kernel runs.
  Relation small = RandomRel("ra", 16, 4);
  OperatorStats st2;
  ctx.stats = &st2;
  ASSERT_TRUE(Select(small, p, ctx).ok());
  EXPECT_FALSE(st2.columnar);
}

TEST(ApplyFilterTest, RefinesAcrossAtomsInAscendingOrder) {
  Relation r = MakeRelation("r", {"x"},
                            {{I(5)}, {I(1)}, {I(4)}, {N()}, {I(2)}});
  Predicate p(MakeConstAtom("r", "x", CmpOp::kGe, I(2)));
  p.AddAtom(MakeConstAtom("r", "x", CmpOp::kLe, I(4)));
  CompiledFilter f = CompileFilter(p, r.schema());
  std::vector<Column> cols;
  GatherColumnsInto(r, f.cols, 0, r.NumRows(), &cols);
  std::vector<int32_t> sel;
  ApplyFilter(f, r, 0, r.NumRows(), cols, &sel);
  EXPECT_EQ(sel, (std::vector<int32_t>{2, 4}));
}

// ---------------------------------------------------------------------------
// Joins: kForce vs kOff bag equality on every flavor.
// ---------------------------------------------------------------------------

Predicate EqA() { return Predicate(MakeAtom("ra", "a", CmpOp::kEq, "rb", "a")); }

Predicate EqAWithResidual() {
  return Predicate::And(EqA(),
                        Predicate(MakeAtom("ra", "b", CmpOp::kLt, "rb", "b")));
}

TEST(ColumnarJoinTest, AllFlavorsMatchReference) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Relation a = RandomRel("ra", 90, seed);
    Relation b = RandomRel("rb", 70, seed + 50);
    for (const Predicate& p : {EqA(), EqAWithResidual()}) {
      EXPECT_TRUE(Relation::BagEquals(*InnerJoin(a, b, p, Reference()),
                                      *InnerJoin(a, b, p, Forced())));
      EXPECT_TRUE(Relation::BagEquals(*LeftOuterJoin(a, b, p, Reference()),
                                      *LeftOuterJoin(a, b, p, Forced())));
      EXPECT_TRUE(Relation::BagEquals(*RightOuterJoin(a, b, p, Reference()),
                                      *RightOuterJoin(a, b, p, Forced())));
      EXPECT_TRUE(Relation::BagEquals(*FullOuterJoin(a, b, p, Reference()),
                                      *FullOuterJoin(a, b, p, Forced())));
      EXPECT_TRUE(Relation::BagEquals(*SemiJoin(a, b, p, Reference()),
                                      *SemiJoin(a, b, p, Forced())));
      EXPECT_TRUE(Relation::BagEquals(*AntiJoin(a, b, p, Reference()),
                                      *AntiJoin(a, b, p, Forced())));
    }
  }
}

TEST(ColumnarJoinTest, BatchBoundarySizesMatchReference) {
  for (int rows : {1, 127, 128, 2049}) {
    Relation a = RandomRel("ra", rows, 31 + rows, /*domain=*/16);
    Relation b = RandomRel("rb", rows, 77 + rows, /*domain=*/16);
    EXPECT_TRUE(Relation::BagEquals(*InnerJoin(a, b, EqA(), Reference()),
                                    *InnerJoin(a, b, EqA(), Forced())))
        << rows << " rows";
  }
}

TEST(ColumnarJoinTest, MultiColumnAndMixedTypeKeysMatchReference) {
  // Keys spanning two columns with cross-type int/double values: the
  // binary batch encoding must induce the same partition as the text path.
  Relation a = MakeRelation("ra", {"a", "b"},
                            {{I(1), I(2)},
                             {D(1.0), I(2)},
                             {I(1), D(2.0)},
                             {S("1"), I(2)},
                             {N(), I(2)},
                             {D(0.5), S("k")}});
  Relation b = MakeRelation("rb", {"a", "b"},
                            {{I(1), I(2)},
                             {D(1.0), D(2.0)},
                             {S("1"), I(2)},
                             {D(0.5), S("k")},
                             {I(1), N()}});
  Predicate p = Predicate::And(
      EqA(), Predicate(MakeAtom("ra", "b", CmpOp::kEq, "rb", "b")));
  EXPECT_TRUE(Relation::BagEquals(*InnerJoin(a, b, p, Reference()),
                                  *InnerJoin(a, b, p, Forced())));
  EXPECT_TRUE(Relation::BagEquals(*FullOuterJoin(a, b, p, Reference()),
                                  *FullOuterJoin(a, b, p, Forced())));
}

TEST(ColumnarJoinTest, ArithmeticKeyStaysOnReferencePath) {
  // a.a + 1 = b.a separates as an equi-key but is not a plain column, so
  // the columnar join must decline and results still agree.
  Relation a = RandomRel("ra", 200, 5, /*domain=*/8, /*null_fraction=*/0.1);
  Relation b = RandomRel("rb", 200, 6, /*domain=*/8, /*null_fraction=*/0.1);
  Predicate p;
  p.AddAtom(Atom{Atom::Kind::kCompare,
                 Scalar::Arith(ArithOp::kAdd, Scalar::Column("ra", "a"),
                               Scalar::Const(I(1))),
                 CmpOp::kEq, Scalar::Column("rb", "a")});
  OperatorStats st;
  ExecContext ctx = Forced();
  ctx.stats = &st;
  StatusOr<Relation> forced = InnerJoin(a, b, p, ctx);
  ASSERT_TRUE(forced.ok());
  EXPECT_TRUE(Relation::BagEquals(*InnerJoin(a, b, p, Reference()), *forced));
}

TEST(ColumnarJoinTest, SpillUnderMemoryCapMatchesUncapped) {
  Relation a = RandomRel("ra", 400, 21, /*domain=*/12);
  Relation b = RandomRel("rb", 400, 22, /*domain=*/12);
  Relation uncapped = *InnerJoin(a, b, EqAWithResidual(), Reference());
  ResourceBudget budget;
  budget.WithMaxMemory(4 * 1024);
  SpillConfig spill;
  spill.enabled = true;
  ExecContext ctx = Forced();
  ctx.budget = &budget;
  ctx.spill = &spill;
  OperatorStats st;
  ctx.stats = &st;
  StatusOr<Relation> capped = InnerJoin(a, b, EqAWithResidual(), ctx);
  ASSERT_TRUE(capped.ok()) << capped.status().ToString();
  EXPECT_TRUE(Relation::BagEquals(uncapped, *capped));
  EXPECT_TRUE(st.spilled);
  EXPECT_EQ(budget.memory_charged(), 0u);  // all charges unwound
}

TEST(ColumnarJoinTest, MemoryCapWithoutSpillFailsCleanly) {
  Relation a = RandomRel("ra", 300, 31, /*domain=*/4);
  Relation b = RandomRel("rb", 300, 32, /*domain=*/4);
  ResourceBudget budget;
  budget.WithMaxMemory(512);
  ExecContext ctx = Forced();
  ctx.budget = &budget;
  StatusOr<Relation> r = InnerJoin(a, b, EqA(), ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.memory_charged(), 0u);
}

// ---------------------------------------------------------------------------
// Special double keys (the key-canonicalization regression suite): hash
// equality must agree with comparison equality for -0.0 / +0.0, NaN, and
// int-valued doubles, on both the tuple and columnar paths.
// ---------------------------------------------------------------------------

TEST(SpecialDoubleKeyTest, HashJoinMatchesNestedLoopOnSignedZeroAndNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Relation a = MakeRelation("ra", {"a", "b"},
                            {{D(-0.0), I(1)},
                             {D(0.0), I(2)},
                             {I(0), I(3)},
                             {D(nan), I(4)},
                             {D(-nan), I(5)},
                             {D(9007199254740993.0), I(6)},
                             {I(5), I(7)}});
  Relation b = MakeRelation("rb", {"a", "c"},
                            {{D(0.0), I(10)},
                             {D(-0.0), I(11)},
                             {I(0), I(12)},
                             {D(nan), I(13)},
                             {D(9007199254740992.0), I(14)},
                             {D(5.0), I(15)}});
  // Same equality phrased so no equi-conjunct separates: forces the
  // nested-loop path, whose Value::Compare is the semantic ground truth.
  Predicate nested;
  nested.AddAtom(MakeAtom("ra", "a", CmpOp::kLe, "rb", "a"));
  nested.AddAtom(MakeAtom("ra", "a", CmpOp::kGe, "rb", "a"));
  Relation nl = *InnerJoin(a, b, nested, Reference());
  // -0.0, +0.0 and the int 0 all match each other (3x3) plus NaN pairs
  // (2x1) plus 5 = 5.0: the canonicalized key encoding must reproduce
  // exactly this bag on the hash paths.
  EXPECT_TRUE(Relation::BagEquals(nl, *InnerJoin(a, b, EqA(), Reference())));
  EXPECT_TRUE(Relation::BagEquals(nl, *InnerJoin(a, b, EqA(), Forced())));
}

TEST(SpecialDoubleKeyTest, ValueHashAgreesWithEquality) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Value::Compare(D(-0.0), D(0.0)), 0);
  EXPECT_EQ(D(-0.0).Hash(), D(0.0).Hash());
  EXPECT_EQ(Value::Compare(D(5.0), I(5)), 0);
  EXPECT_EQ(D(5.0).Hash(), I(5).Hash());
  EXPECT_EQ(Value::Compare(D(nan), D(nan)), 0);
  EXPECT_EQ(D(nan).Hash(), D(-nan).Hash());
  // NaN sorts after every non-NaN and never equals one.
  EXPECT_GT(Value::Compare(D(nan), D(1e308)), 0);
  EXPECT_NE(Value::Compare(D(nan), I(0)), 0);
}

// ---------------------------------------------------------------------------
// Aggregation: columnar group-by parity.
// ---------------------------------------------------------------------------

AggSpec Agg(AggFunc f, ScalarPtr in, std::string name, bool distinct = false) {
  AggSpec s;
  s.func = f;
  s.distinct = distinct;
  s.input = std::move(in);
  s.out_rel = "g";
  s.out_name = std::move(name);
  return s;
}

TEST(ColumnarAggTest, GroupByMatchesReference) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Relation r = RandomRel("ra", 250, seed);
    GroupBySpec spec;
    spec.group_cols = {Attribute{"ra", "a"}};
    spec.aggs.push_back(Agg(AggFunc::kCountStar, nullptr, "n"));
    spec.aggs.push_back(Agg(AggFunc::kSum, Scalar::Column("ra", "b"), "s"));
    spec.aggs.push_back(Agg(AggFunc::kMin, Scalar::Column("ra", "b"), "lo"));
    spec.aggs.push_back(Agg(AggFunc::kMax, Scalar::Column("ra", "b"), "hi"));
    spec.aggs.push_back(Agg(AggFunc::kAvg, Scalar::Column("ra", "b"), "m"));
    spec.aggs.push_back(Agg(AggFunc::kCount, Scalar::Column("ra", "b"), "c"));
    OperatorStats st;
    ExecContext forced = Forced();
    forced.stats = &st;
    StatusOr<Relation> ref = GeneralizedProjection(r, spec, Reference());
    StatusOr<Relation> col = GeneralizedProjection(r, spec, forced);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(col.ok());
    EXPECT_TRUE(Relation::BagEquals(*ref, *col)) << "seed " << seed;
    EXPECT_TRUE(st.columnar);
  }
}

TEST(ColumnarAggTest, DistinctAggFallsBackAndMatches) {
  Relation r = RandomRel("ra", 200, 9);
  GroupBySpec spec;
  spec.group_cols = {Attribute{"ra", "a"}};
  spec.aggs.push_back(
      Agg(AggFunc::kCount, Scalar::Column("ra", "b"), "dc", /*distinct=*/true));
  OperatorStats st;
  ExecContext forced = Forced();
  forced.stats = &st;
  StatusOr<Relation> ref = GeneralizedProjection(r, spec, Reference());
  StatusOr<Relation> col = GeneralizedProjection(r, spec, forced);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE(Relation::BagEquals(*ref, *col));
  EXPECT_FALSE(st.columnar);  // DISTINCT pins the reference path
}

TEST(ColumnarAggTest, GroupKeyNullsAndVidsMatchReference) {
  // NULL group keys form a real group, and vid-keyed grouping
  // (group_vid_rels) must partition identically under the batch key.
  Relation r = RandomRel("ra", 180, 13, /*domain=*/3, /*null_fraction=*/0.4);
  GroupBySpec spec;
  spec.group_cols = {Attribute{"ra", "a"}, Attribute{"ra", "b"}};
  spec.group_vid_rels = {"ra"};
  spec.aggs.push_back(Agg(AggFunc::kCountStar, nullptr, "n"));
  StatusOr<Relation> ref = GeneralizedProjection(r, spec, Reference());
  StatusOr<Relation> col = GeneralizedProjection(r, spec, Forced());
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE(Relation::BagEquals(*ref, *col));
}

// ---------------------------------------------------------------------------
// Parallel twins with batching forced.
// ---------------------------------------------------------------------------

Executor* TestExecutor() {
  static Executor* ex = [] {
    auto* e = new Executor(4);
    e->set_min_parallel_rows(1);
    e->set_morsel_rows(7);
    return e;
  }();
  return ex;
}

TEST(ColumnarParallelTest, SelectAndJoinMatchSerialReference) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Relation a = RandomRel("ra", 211, seed);
    Relation b = RandomRel("rb", 163, seed + 40);
    ExecContext par = Forced();
    par.executor = TestExecutor();
    Predicate sel(MakeAtom("ra", "a", CmpOp::kLt, "ra", "b"));
    EXPECT_TRUE(Relation::BagEquals(*Select(a, sel, Reference()),
                                    *Select(a, sel, par)));
    EXPECT_TRUE(
        Relation::BagEquals(*InnerJoin(a, b, EqAWithResidual(), Reference()),
                            *InnerJoin(a, b, EqAWithResidual(), par)));
    EXPECT_TRUE(Relation::BagEquals(*FullOuterJoin(a, b, EqA(), Reference()),
                                    *FullOuterJoin(a, b, EqA(), par)));
  }
}

}  // namespace
}  // namespace gsopt
