// Outer-join NULL equi-key semantics: a NULL join key never equi-matches
// (3VL), so the hash path's EncodeKeys skips the row -- but on the
// preserved side of an outer join the same row must still come back
// null-padded. The hash fast path and the nested-loop fallback must agree
// on this, which the property test pins down by running each predicate in
// a hash-usable and a hash-defeating-but-equivalent form.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "exec/eval.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::FullOuterJoin;
using exec::InnerJoin;
using exec::LeftOuterJoin;
using exec::RightOuterJoin;

Value I(int64_t v) { return Value::Int(v); }
Value N() { return Value::Null(); }

// a has a NULL key row and a matching row; b has a NULL key row and the
// match. Column layout after a join: [a.k, a.p, b.k, b.q].
Relation A() {
  return MakeRelation("a", {"k", "p"}, {{I(1), I(10)}, {N(), I(20)}});
}
Relation B() {
  return MakeRelation("b", {"k", "q"}, {{I(1), I(100)}, {N(), I(200)}});
}
Predicate EqK() { return Predicate(MakeAtom("a", "k", CmpOp::kEq, "b", "k")); }

// Number of rows where the a-side columns are all NULL (b-preserved pad)
// or the b-side columns are all NULL (a-preserved pad).
int CountPadded(const Relation& r, int from, int to) {
  int n = 0;
  for (const Tuple& t : r.rows()) {
    bool all_null = true;
    for (int i = from; i < to; ++i) all_null &= t.values[i].is_null();
    n += all_null ? 1 : 0;
  }
  return n;
}

TEST(OuterJoinNullKeyTest, LeftPreservesNullKeyRow) {
  Relation j = *LeftOuterJoin(A(), B(), EqK());
  // match (1,10,1,100) + null-padded (NULL,20,NULL,NULL).
  ASSERT_EQ(j.NumRows(), 2);
  EXPECT_EQ(CountPadded(j, 2, 4), 1);  // b side padded once
  bool saw_null_key_row = false;
  for (const Tuple& t : j.rows()) {
    if (t.values[0].is_null()) {
      saw_null_key_row = true;
      EXPECT_TRUE(Value::IdentityEquals(t.values[1], I(20)));
      EXPECT_TRUE(t.values[2].is_null());
      EXPECT_TRUE(t.values[3].is_null());
    }
  }
  EXPECT_TRUE(saw_null_key_row);
}

TEST(OuterJoinNullKeyTest, RightPreservesNullKeyRow) {
  Relation j = *RightOuterJoin(A(), B(), EqK());
  ASSERT_EQ(j.NumRows(), 2);
  EXPECT_EQ(CountPadded(j, 0, 2), 1);  // a side padded once
}

TEST(OuterJoinNullKeyTest, FullPreservesBothNullKeyRows) {
  Relation j = *FullOuterJoin(A(), B(), EqK());
  // match + a's NULL-key row + b's NULL-key row.
  ASSERT_EQ(j.NumRows(), 3);
  EXPECT_EQ(CountPadded(j, 2, 4), 1);
  EXPECT_EQ(CountPadded(j, 0, 2), 1);
}

TEST(OuterJoinNullKeyTest, InnerDropsNullKeyRows) {
  Relation j = *InnerJoin(A(), B(), EqK());
  ASSERT_EQ(j.NumRows(), 1);
  EXPECT_TRUE(Value::IdentityEquals(j.row(0).values[0], I(1)));
}

TEST(OuterJoinNullKeyTest, HashCountersSeeTheSkips) {
  exec::OperatorStats stats;
  exec::ExecContext ctx{nullptr, &stats};
  Relation j = *LeftOuterJoin(A(), B(), EqK(), ctx);
  ASSERT_EQ(j.NumRows(), 2);
  EXPECT_TRUE(stats.hash_path);
  EXPECT_EQ(stats.build_rows, 1u);       // b's NULL key never enters the table
  EXPECT_EQ(stats.probe_rows, 1u);       // a's NULL key never probes
  EXPECT_EQ(stats.null_key_skips, 2u);   // one skip per side
}

TEST(OuterJoinNullKeyTest, HashAndNestedLoopAgreeUnderNulls) {
  // a.k = b.k (hash path) versus a.k <= b.k AND a.k >= b.k (no clean
  // equi-conjunct, nested loops) -- identical 3VL semantics, so every
  // join flavour must produce bag-equal results on null-heavy data.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    RandomRelationOptions opt;
    opt.num_rows = 25;
    opt.domain = 4;
    opt.null_fraction = 0.3;
    Relation a = MakeRandomRelation("a", {"k", "p"}, opt, &rng);
    Relation b = MakeRandomRelation("b", {"k", "q"}, opt, &rng);
    Predicate hash_p(MakeAtom("a", "k", CmpOp::kEq, "b", "k"));
    Predicate loop_p = Predicate::And(
        Predicate(MakeAtom("a", "k", CmpOp::kLe, "b", "k")),
        Predicate(MakeAtom("a", "k", CmpOp::kGe, "b", "k")));
    EXPECT_TRUE(Relation::BagEquals(*InnerJoin(a, b, hash_p),
                                    *InnerJoin(a, b, loop_p)))
        << "inner, trial " << trial;
    EXPECT_TRUE(Relation::BagEquals(*LeftOuterJoin(a, b, hash_p),
                                    *LeftOuterJoin(a, b, loop_p)))
        << "left, trial " << trial;
    EXPECT_TRUE(Relation::BagEquals(*RightOuterJoin(a, b, hash_p),
                                    *RightOuterJoin(a, b, loop_p)))
        << "right, trial " << trial;
    EXPECT_TRUE(Relation::BagEquals(*FullOuterJoin(a, b, hash_p),
                                    *FullOuterJoin(a, b, loop_p)))
        << "full, trial " << trial;
  }
}

}  // namespace
}  // namespace gsopt
