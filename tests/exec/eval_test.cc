#include "exec/eval.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::AntiJoin;
using exec::FullOuterJoin;
using exec::InnerJoin;
using exec::LeftOuterJoin;
using exec::OuterUnion;
using exec::Product;
using exec::Project;
using exec::RightOuterJoin;
using exec::Select;
using exec::SemiJoin;

Value I(int64_t v) { return Value::Int(v); }
Value N() { return Value::Null(); }

Relation R1() {
  return MakeRelation("r1", {"a", "b"},
                      {{I(1), I(10)}, {I(2), I(20)}, {I(3), I(30)}});
}
Relation R2() {
  return MakeRelation("r2", {"b", "c"},
                      {{I(10), I(100)}, {I(10), I(101)}, {I(40), I(400)}});
}

Predicate EqB() {
  return Predicate(MakeAtom("r1", "b", CmpOp::kEq, "r2", "b"));
}

TEST(ProductTest, CardinalityAndSchema) {
  Relation p = *Product(R1(), R2());
  EXPECT_EQ(p.NumRows(), 9);
  EXPECT_EQ(p.schema().size(), 4);
  EXPECT_EQ(p.vschema().size(), 2);
  EXPECT_EQ(p.vschema().rel(0), "r1");
  EXPECT_EQ(p.vschema().rel(1), "r2");
}

TEST(ProductTest, EmptySideYieldsEmpty) {
  Relation empty = MakeRelation("r2", {"b", "c"}, {});
  EXPECT_EQ(Product(R1(), empty)->NumRows(), 0);
}

TEST(SelectTest, FiltersUnknownAsFalse) {
  Relation r = MakeRelation("r", {"x"}, {{I(1)}, {N()}, {I(2)}});
  Predicate p(MakeConstAtom("r", "x", CmpOp::kGe, I(1)));
  Relation s = *Select(r, p);
  EXPECT_EQ(s.NumRows(), 2);  // NULL row dropped: null in-tolerance
}

TEST(SelectTest, TruePredicateKeepsAll) {
  EXPECT_EQ(Select(R1(), Predicate::True())->NumRows(), 3);
}

TEST(ProjectTest, KeepsDuplicatesAndRestrictsVirtualSchema) {
  Relation r = MakeRelation("r", {"x", "y"}, {{I(1), I(1)}, {I(1), I(2)}});
  Relation p = *Project(r, {Attribute{"r", "x"}});
  EXPECT_EQ(p.NumRows(), 2);  // duplicate-preserving
  EXPECT_EQ(p.schema().size(), 1);
  EXPECT_EQ(p.vschema().size(), 1);  // r's vid kept, attrs all from r
}

TEST(InnerJoinTest, HashPathEquiJoin) {
  Relation j = *InnerJoin(R1(), R2(), EqB());
  EXPECT_EQ(j.NumRows(), 2);  // b=10 matches two r2 rows
  for (const Tuple& t : j.rows()) {
    EXPECT_TRUE(Value::IdentityEquals(t.values[1], t.values[2]));
  }
}

TEST(InnerJoinTest, NullKeysNeverMatch) {
  Relation a = MakeRelation("r1", {"a", "b"}, {{I(1), N()}});
  Relation b = MakeRelation("r2", {"b", "c"}, {{N(), I(9)}});
  EXPECT_EQ(InnerJoin(a, b, EqB())->NumRows(), 0);
}

TEST(InnerJoinTest, NestedLoopFallbackForInequality) {
  Predicate lt(MakeAtom("r1", "b", CmpOp::kLt, "r2", "b"));
  Relation j = *InnerJoin(R1(), R2(), lt);
  // r1.b in {10,20,30}; r2.b in {10,10,40}: pairs with r1.b<r2.b:
  // 10<40, 20<40, 30<40 => 3
  EXPECT_EQ(j.NumRows(), 3);
}

TEST(InnerJoinTest, HashAndNestedLoopAgreeOnRandomData) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    RandomRelationOptions opt;
    opt.num_rows = 30;
    opt.domain = 5;
    opt.null_fraction = 0.1;
    Relation a = MakeRandomRelation("r1", {"a", "b"}, opt, &rng);
    Relation b = MakeRandomRelation("r2", {"b", "c"}, opt, &rng);
    // Equi atom (hash path) vs the same join forced through nested loops
    // by phrasing equality as (<= AND >=).
    Predicate eq(MakeAtom("r1", "b", CmpOp::kEq, "r2", "b"));
    Predicate eq_nl;
    eq_nl.AddAtom(MakeAtom("r1", "b", CmpOp::kLe, "r2", "b"));
    eq_nl.AddAtom(MakeAtom("r1", "b", CmpOp::kGe, "r2", "b"));
    EXPECT_TRUE(Relation::BagEquals(*InnerJoin(a, b, eq),
                                    *InnerJoin(a, b, eq_nl)));
  }
}

TEST(LeftOuterJoinTest, PreservesUnmatchedLeft) {
  Relation j = *LeftOuterJoin(R1(), R2(), EqB());
  EXPECT_EQ(j.NumRows(), 4);  // 2 matches + rows b=20,30 padded
  int padded = 0;
  for (const Tuple& t : j.rows()) {
    if (t.values[2].is_null()) {
      ++padded;
      EXPECT_TRUE(t.values[3].is_null());
      EXPECT_EQ(t.vids[1], kNullRowId);
      EXPECT_NE(t.vids[0], kNullRowId);
    }
  }
  EXPECT_EQ(padded, 2);
}

TEST(LeftOuterJoinTest, EmptyRightPreservesAllLeft) {
  Relation empty = MakeRelation("r2", {"b", "c"}, {});
  Relation j = *LeftOuterJoin(R1(), empty, EqB());
  EXPECT_EQ(j.NumRows(), 3);
}

TEST(RightOuterJoinTest, MirrorsLeft) {
  Relation j = *RightOuterJoin(R1(), R2(), EqB());
  Relation j2 = *LeftOuterJoin(R2(), R1(), EqB());
  EXPECT_TRUE(Relation::BagEquals(j, j2));
}

TEST(FullOuterJoinTest, PreservesBothSides) {
  Relation j = *FullOuterJoin(R1(), R2(), EqB());
  // 2 matches + 2 unmatched left + 1 unmatched right (b=40)
  EXPECT_EQ(j.NumRows(), 5);
}

TEST(AntiJoinTest, UnmatchedLeftOnly) {
  Relation j = *AntiJoin(R1(), R2(), EqB());
  EXPECT_EQ(j.NumRows(), 2);
  EXPECT_EQ(j.schema().size(), 2);
}

TEST(SemiJoinTest, MatchedLeftWithoutDuplication) {
  Relation j = *SemiJoin(R1(), R2(), EqB());
  EXPECT_EQ(j.NumRows(), 1);  // only b=10 row, once despite two matches
}

TEST(LojDecomposition, LojEqualsJoinUnionAntiPadded) {
  // Paper 1.2: LOJ extension is the union of join and anti-join (padded).
  Relation loj = *LeftOuterJoin(R1(), R2(), EqB());
  Relation join = *InnerJoin(R1(), R2(), EqB());
  Relation anti = *AntiJoin(R1(), R2(), EqB());
  Relation combined = *OuterUnion(join, anti);
  EXPECT_TRUE(Relation::BagEquals(loj, combined));
}

TEST(OuterUnionTest, PadsMissingAttributes) {
  Relation u = *OuterUnion(R1(), R2());
  EXPECT_EQ(u.NumRows(), 6);
  EXPECT_EQ(u.schema().size(), 4);  // r1.a, r1.b, r2.b, r2.c
  // r1 rows have NULL r2 attributes and vice versa.
  EXPECT_TRUE(u.row(0).values[2].is_null());
  EXPECT_TRUE(u.row(3).values[0].is_null());
}

TEST(OuterUnionTest, SharedAttributesAlign) {
  Relation a = MakeRelation("t", {"x"}, {{I(1)}});
  Relation b = MakeRelation("t", {"x"}, {{I(2)}});
  Relation u = *OuterUnion(a, b);
  EXPECT_EQ(u.schema().size(), 1);
  EXPECT_EQ(u.NumRows(), 2);
}

TEST(BagEqualsTest, ColumnOrderIndependent) {
  Relation ab = *Product(R1(), R2());
  Relation ba = *Product(R2(), R1());
  EXPECT_TRUE(Relation::BagEquals(ab, ba));
}

TEST(BagEqualsTest, DetectsCardinalityDifference) {
  Relation a = MakeRelation("t", {"x"}, {{I(1)}, {I(1)}});
  Relation b = MakeRelation("t", {"x"}, {{I(1)}});
  EXPECT_FALSE(Relation::BagEquals(a, b));
}

TEST(BagEqualsTest, DistinguishesNullFromValue) {
  Relation a = MakeRelation("t", {"x"}, {{N()}});
  Relation b = MakeRelation("t", {"x"}, {{I(0)}});
  EXPECT_FALSE(Relation::BagEquals(a, b));
}

}  // namespace
}  // namespace gsopt
