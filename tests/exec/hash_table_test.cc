// Unit tests for the allocation-free join-key machinery: KeyArena offsets,
// JoinHashTable build/find with duplicate chains across lanes, and the
// distinct-key / max-chain statistics the join uses for output pre-sizing.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/hash_table.h"

namespace gsopt::exec {
namespace {

JoinHashTable::Entry MakeEntry(std::vector<KeyArena>* arenas, uint32_t lane,
                               const std::string& key, int64_t row) {
  uint64_t off = (*arenas)[lane].Append(key);
  return JoinHashTable::Entry{HashKeyBytes(key), off,
                              static_cast<uint32_t>(key.size()), lane, row,
                              -1};
}

// Follows the duplicate chain from Find() and collects build rows.
std::vector<int64_t> ChainRows(const JoinHashTable& t, const std::string& key,
                               const std::vector<KeyArena>& arenas) {
  std::vector<int64_t> rows;
  int32_t e = t.Find(HashKeyBytes(key), key.data(),
                     static_cast<uint32_t>(key.size()), arenas);
  for (; e >= 0; e = t.entry(e).next) rows.push_back(t.entry(e).row);
  return rows;
}

TEST(JoinHashTableTest, FindsKeysAcrossLaneArenas) {
  std::vector<KeyArena> arenas(2);
  std::vector<JoinHashTable::Entry> entries;
  entries.push_back(MakeEntry(&arenas, 0, "i1|", 10));
  entries.push_back(MakeEntry(&arenas, 1, "i2|", 20));
  entries.push_back(MakeEntry(&arenas, 1, "i1|", 30));  // dup of lane 0's key
  JoinHashTable t;
  t.Build(std::move(entries), arenas);

  EXPECT_EQ(t.num_entries(), 3u);
  EXPECT_EQ(t.distinct_keys(), 2u);
  EXPECT_EQ(t.max_chain(), 2u);

  std::vector<int64_t> ones = ChainRows(t, "i1|", arenas);
  ASSERT_EQ(ones.size(), 2u);
  // Chain order is last-inserted-first; both build rows must be present.
  EXPECT_EQ(ones[0], 30);
  EXPECT_EQ(ones[1], 10);
  EXPECT_EQ(ChainRows(t, "i2|", arenas), std::vector<int64_t>{20});
  EXPECT_TRUE(ChainRows(t, "i3|", arenas).empty());
}

TEST(JoinHashTableTest, EmptyTableFindsNothing) {
  std::vector<KeyArena> arenas(1);
  JoinHashTable t;
  t.Build({}, arenas);
  EXPECT_EQ(t.num_entries(), 0u);
  EXPECT_TRUE(ChainRows(t, "i1|", arenas).empty());
}

TEST(JoinHashTableTest, ManyKeysWithSkew) {
  // 500 distinct keys plus one hot key occurring 100 times: every key must
  // resolve, chains must be complete, and max_chain must see the skew.
  std::vector<KeyArena> arenas(3);
  std::vector<JoinHashTable::Entry> entries;
  int64_t row = 0;
  for (int k = 0; k < 500; ++k) {
    entries.push_back(MakeEntry(&arenas, static_cast<uint32_t>(k % 3),
                                "i" + std::to_string(k) + "|", row++));
  }
  for (int d = 0; d < 100; ++d) {
    entries.push_back(
        MakeEntry(&arenas, static_cast<uint32_t>(d % 3), "hot|", row++));
  }
  JoinHashTable t;
  t.Build(std::move(entries), arenas);

  EXPECT_EQ(t.num_entries(), 600u);
  EXPECT_EQ(t.distinct_keys(), 501u);
  EXPECT_EQ(t.max_chain(), 100u);
  for (int k = 0; k < 500; ++k) {
    EXPECT_EQ(ChainRows(t, "i" + std::to_string(k) + "|", arenas).size(), 1u)
        << "key " << k;
  }
  EXPECT_EQ(ChainRows(t, "hot|", arenas).size(), 100u);
}

TEST(KeyArenaTest, OffsetsAddressAppendedBytes) {
  KeyArena arena;
  uint64_t o1 = arena.Append("abc");
  uint64_t o2 = arena.Append("defg");
  EXPECT_EQ(o1, 0u);
  EXPECT_EQ(o2, 3u);
  EXPECT_EQ(std::string(arena.At(o1), 3), "abc");
  EXPECT_EQ(std::string(arena.At(o2), 4), "defg");
  EXPECT_EQ(arena.size(), 7u);
}

TEST(HashKeyBytesTest, DistinctKeysHashDifferently) {
  // Not a cryptographic property, just a sanity check that FNV-1a sees
  // every byte: permutations and prefixes must not collide here.
  EXPECT_NE(HashKeyBytes("i1|i2|"), HashKeyBytes("i2|i1|"));
  EXPECT_NE(HashKeyBytes("i1|"), HashKeyBytes("i1|i1|"));
  EXPECT_EQ(HashKeyBytes("i1|"), HashKeyBytes(std::string("i1|")));
}

}  // namespace
}  // namespace gsopt::exec
