// Bloom-filter sideways-information-passing suite (exec/bloom.h and its
// integration into every hash-join path). The filter's contract: a
// negative membership answer is definitive (no false negatives ever), a
// NULL key is never inserted or checked, and turning the filter on
// (BloomMode::kForce) must reproduce the filter-free result bag on every
// join flavor and every execution path -- serial tuple-at-a-time,
// columnar, morsel-parallel, and spilled -- including when the filter's
// own allocation fails (degrade to filter-free, never a wrong answer).
#include "exec/bloom.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/fault_injector.h"
#include "base/rng.h"
#include "exec/eval.h"
#include "exec/executor.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using exec::AntiJoin;
using exec::BatchMode;
using exec::BloomEligible;
using exec::BloomFilter;
using exec::BloomMode;
using exec::ExecContext;
using exec::Executor;
using exec::FullOuterJoin;
using exec::InnerJoin;
using exec::LeftOuterJoin;
using exec::Mgoj;
using exec::OperatorStats;
using exec::RightOuterJoin;
using exec::SemiJoin;
using exec::SpillConfig;

Value I(int64_t v) { return Value::Int(v); }
Value D(double v) { return Value::Double(v); }
Value S(std::string v) { return Value::String(std::move(v)); }
Value N() { return Value::Null(); }

// ---------------------------------------------------------------------------
// Filter unit tests.
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegativesOnRandomHashes) {
  Rng rng(7);
  BloomFilter f;
  f.Init(10000);
  ASSERT_TRUE(f.enabled());
  std::vector<uint64_t> hashes;
  hashes.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    uint64_t h = rng.Next64();
    hashes.push_back(h);
    f.Insert(h);
  }
  for (uint64_t h : hashes) EXPECT_TRUE(f.MayContain(h));
}

TEST(BloomFilterTest, RejectsMostAbsentKeys) {
  Rng rng(8);
  BloomFilter f;
  f.Init(10000);
  for (int i = 0; i < 10000; ++i) f.Insert(rng.Next64());
  // A fresh stream from the same generator is disjoint with overwhelming
  // probability; the 16-bits-per-key sizing targets ~1.6% false positives,
  // so well over 90% of absent keys must be rejected.
  int rejected = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!f.MayContain(rng.Next64())) ++rejected;
  }
  EXPECT_GT(rejected, 9000);
}

TEST(BloomFilterTest, DisabledUntilInit) {
  BloomFilter f;
  EXPECT_FALSE(f.enabled());
  EXPECT_EQ(f.byte_size(), 0u);
  f.Init(100);
  EXPECT_TRUE(f.enabled());
  EXPECT_EQ(f.byte_size(), BloomFilter::BytesFor(100));
}

TEST(BloomFilterTest, BytesForIsMonotoneAndCapped) {
  EXPECT_GT(BloomFilter::BytesFor(1), 0u);
  EXPECT_LE(BloomFilter::BytesFor(1), BloomFilter::BytesFor(1 << 20));
  // The block cap bounds the allocation no matter how large the build
  // side estimate is.
  const uint64_t cap = BloomFilter::kMaxBlocks * BloomFilter::kWordsPerBlock *
                       sizeof(uint64_t);
  EXPECT_EQ(BloomFilter::BytesFor(int64_t{1} << 40), cap);
}

TEST(BloomFilterTest, MergeFromOrsTwoLaneFilters) {
  Rng rng(9);
  BloomFilter a, b;
  a.Init(2000);
  b.Init(2000);
  std::vector<uint64_t> ha, hb;
  for (int i = 0; i < 1000; ++i) {
    uint64_t h = rng.Next64();
    ha.push_back(h);
    a.Insert(h);
  }
  for (int i = 0; i < 1000; ++i) {
    uint64_t h = rng.Next64();
    hb.push_back(h);
    b.Insert(h);
  }
  a.MergeFrom(b);
  for (uint64_t h : ha) EXPECT_TRUE(a.MayContain(h));
  for (uint64_t h : hb) EXPECT_TRUE(a.MayContain(h));
}

TEST(BloomEligibleTest, ModesAndAutoThresholds) {
  EXPECT_FALSE(BloomEligible(BloomMode::kOff, 100, 1 << 20));
  EXPECT_TRUE(BloomEligible(BloomMode::kForce, 1, 1));
  // kAuto: the probe side must be large enough to amortize the build.
  EXPECT_FALSE(BloomEligible(BloomMode::kAuto, 100, 100));
  EXPECT_TRUE(
      BloomEligible(BloomMode::kAuto, 100, exec::kMinBloomProbeRows));
  // ...and the build side must not dwarf the probe side.
  EXPECT_FALSE(BloomEligible(BloomMode::kAuto, 5 * 4096, 4096));
  EXPECT_TRUE(BloomEligible(BloomMode::kAuto, 4 * 4096, 4096));
  // An empty build side has nothing to filter with.
  EXPECT_FALSE(BloomEligible(BloomMode::kAuto, 0, 1 << 20));
}

// ---------------------------------------------------------------------------
// Join differentials: kForce must reproduce the kOff bag everywhere.
// ---------------------------------------------------------------------------

Relation RandomRel(const std::string& name, int rows, uint64_t seed,
                   int64_t domain, double null_fraction = 0.25) {
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = domain;
  opt.null_fraction = null_fraction;
  return MakeRandomRelation(name, {"a", "b"}, opt, &rng);
}

Predicate EqA() { return Predicate(MakeAtom("ra", "a", CmpOp::kEq, "rb", "a")); }

ExecContext FilterOff() {
  ExecContext ctx;
  ctx.bloom = BloomMode::kOff;
  return ctx;
}

// The four execution-path contexts under forced filtering. The spilled
// variant needs per-call budget/config storage, so paths that require
// state take it from the caller.
ExecContext ForcedSerial() {
  ExecContext ctx;
  ctx.bloom = BloomMode::kForce;
  ctx.batch = BatchMode::kOff;
  return ctx;
}

ExecContext ForcedColumnar() {
  ExecContext ctx;
  ctx.bloom = BloomMode::kForce;
  ctx.batch = BatchMode::kForce;
  return ctx;
}

template <typename Op>
void CheckAllPathsMatchFilterFree(Op&& op, const char* label) {
  auto reference = op(FilterOff());
  ASSERT_TRUE(reference.ok()) << label << ": " << reference.status().ToString();

  auto serial = op(ForcedSerial());
  ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().ToString();
  EXPECT_TRUE(Relation::BagEquals(*reference, *serial))
      << label << " (serial) diverges";

  auto columnar = op(ForcedColumnar());
  ASSERT_TRUE(columnar.ok()) << label << ": " << columnar.status().ToString();
  EXPECT_TRUE(Relation::BagEquals(*reference, *columnar))
      << label << " (columnar) diverges";

  {
    Executor executor(4);
    executor.set_min_parallel_rows(1);
    executor.set_morsel_rows(7);
    ExecContext ctx;
    ctx.bloom = BloomMode::kForce;
    ctx.executor = &executor;
    auto parallel = op(ctx);
    ASSERT_TRUE(parallel.ok()) << label << ": "
                               << parallel.status().ToString();
    EXPECT_TRUE(Relation::BagEquals(*reference, *parallel))
        << label << " (parallel) diverges";
  }

  {
    ResourceBudget budget;
    budget.WithMaxMemory(4 * 1024);
    SpillConfig cfg;
    cfg.enabled = true;
    cfg.partitions = 4;
    cfg.max_recursion = 2;
    ExecContext ctx;
    ctx.bloom = BloomMode::kForce;
    ctx.budget = &budget;
    ctx.spill = &cfg;
    auto spilled = op(ctx);
    ASSERT_TRUE(spilled.ok()) << label << ": " << spilled.status().ToString();
    EXPECT_TRUE(Relation::BagEquals(*reference, *spilled))
        << label << " (spilled) diverges";
    EXPECT_EQ(budget.memory_charged(), 0u)
        << label << " (spilled) retained a memory charge";
  }
}

TEST(BloomJoinTest, AllFlavorsAllPathsMatchFilterFree) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    // Skewed domains: most probe rows have no build partner, so the filter
    // actually rejects; NULL keys exercise the never-inserted rule.
    Relation a = RandomRel("ra", 300, seed * 2 + 1, 50);
    Relation b = RandomRel("rb", 80, seed * 2 + 2, 12);
    Predicate p = EqA();
    CheckAllPathsMatchFilterFree(
        [&](const ExecContext& ctx) { return InnerJoin(a, b, p, ctx); },
        "inner");
    CheckAllPathsMatchFilterFree(
        [&](const ExecContext& ctx) { return LeftOuterJoin(a, b, p, ctx); },
        "loj");
    CheckAllPathsMatchFilterFree(
        [&](const ExecContext& ctx) { return RightOuterJoin(a, b, p, ctx); },
        "roj");
    CheckAllPathsMatchFilterFree(
        [&](const ExecContext& ctx) { return FullOuterJoin(a, b, p, ctx); },
        "foj");
    CheckAllPathsMatchFilterFree(
        [&](const ExecContext& ctx) { return SemiJoin(a, b, p, ctx); },
        "semi");
    CheckAllPathsMatchFilterFree(
        [&](const ExecContext& ctx) { return AntiJoin(a, b, p, ctx); },
        "anti");
    std::vector<exec::PreservedGroup> groups = {{"ra"}};
    CheckAllPathsMatchFilterFree(
        [&](const ExecContext& ctx) { return Mgoj(a, b, p, groups, ctx); },
        "mgoj");
  }
}

TEST(BloomJoinTest, UnifiedKeyClassesSurviveFiltering) {
  // Int/double key unification (5 == 5.0), the single NaN class, and the
  // -0.0/+0.0 fold all flow through two independent hash computations on
  // the columnar path (materialized build key vs. streaming probe hash);
  // any byte-level disagreement between them would show up here as a
  // dropped match.
  Relation a = MakeRelation(
      "ra", {"a", "b"},
      {{I(5), I(1)},
       {D(5.0), I(2)},
       {D(0.0), I(3)},
       {D(-0.0), I(4)},
       {D(std::nan("1")), I(5)},
       {D(std::nan("2")), I(6)},
       {D(2.5), I(7)},
       {S("k"), I(8)},
       {N(), I(9)}});
  Relation b = MakeRelation(
      "rb", {"a", "b"},
      {{D(5.0), I(10)},
       {I(5), I(11)},
       {D(-0.0), I(12)},
       {D(std::nan("3")), I(13)},
       {I(7), I(14)},
       {S("k"), I(15)},
       {N(), I(16)}});
  Predicate p = EqA();
  CheckAllPathsMatchFilterFree(
      [&](const ExecContext& ctx) { return InnerJoin(a, b, p, ctx); },
      "unified-inner");
  CheckAllPathsMatchFilterFree(
      [&](const ExecContext& ctx) { return FullOuterJoin(a, b, p, ctx); },
      "unified-foj");
}

TEST(BloomJoinTest, StatsCountChecksRejectsAndFalsePositives) {
  // Disjoint key domains: every probe is checked, (almost) every probe is
  // rejected, and any filter pass-through shows up as a find-miss counted
  // as a false positive.
  Relation a = RandomRel("ra", 400, 21, 1000, 0.2);
  Relation b = RandomRel("rb", 100, 22, 50, 0.0);
  OperatorStats st;
  ExecContext ctx = ForcedSerial();
  ctx.stats = &st;
  ASSERT_TRUE(InnerJoin(a, b, EqA(), ctx).ok());
  EXPECT_TRUE(st.bloom);
  // Every non-NULL probe row is checked exactly once: the check count is
  // the probe count (NULL keys were never hashed into the filter).
  EXPECT_EQ(st.bloom_checks, st.probe_rows);
  EXPECT_GT(st.bloom_checks, 0u);
  EXPECT_GT(st.bloom_rejects, 0u);
  EXPECT_LE(st.bloom_false_positives, st.bloom_checks - st.bloom_rejects);

  // Same shape through the columnar kernels.
  OperatorStats st2;
  ExecContext ctx2 = ForcedColumnar();
  ctx2.stats = &st2;
  ASSERT_TRUE(InnerJoin(a, b, EqA(), ctx2).ok());
  EXPECT_TRUE(st2.bloom);
  EXPECT_EQ(st2.bloom_checks, st.bloom_checks);
  EXPECT_EQ(st2.bloom_rejects, st.bloom_rejects);
}

TEST(BloomJoinTest, OffModeNeverBuildsAFilter) {
  Relation a = RandomRel("ra", 300, 31, 40);
  Relation b = RandomRel("rb", 60, 32, 10);
  OperatorStats st;
  ExecContext ctx = FilterOff();
  ctx.stats = &st;
  ASSERT_TRUE(InnerJoin(a, b, EqA(), ctx).ok());
  EXPECT_FALSE(st.bloom);
  EXPECT_EQ(st.bloom_checks, 0u);
}

TEST(BloomJoinTest, FailedFilterAllocationDegradesToFilterFree) {
  Relation a = RandomRel("ra", 300, 41, 40);
  Relation b = RandomRel("rb", 60, 42, 10);
  Relation reference = *InnerJoin(a, b, EqA(), FilterOff());

  // The filter's reservation is the serial join's first kAlloc probe;
  // max_faults=1 fires exactly there and nowhere else. The join must run
  // to a correct answer with the filter silently disabled.
  FaultInjector::Options fo;
  fo.period = 1;
  fo.site_mask = FaultInjector::MaskOf({FaultSite::kAlloc});
  fo.max_faults = 1;
  FaultInjector fault(fo);
  OperatorStats st;
  ExecContext ctx = ForcedSerial();
  ctx.fault = &fault;
  ctx.stats = &st;
  auto got = InnerJoin(a, b, EqA(), ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(fault.fired_total(), 1u);
  EXPECT_FALSE(st.bloom);
  EXPECT_TRUE(Relation::BagEquals(reference, *got));

  // Same degrade on the columnar path.
  FaultInjector fault2(fo);
  OperatorStats st2;
  ExecContext ctx2 = ForcedColumnar();
  ctx2.fault = &fault2;
  ctx2.stats = &st2;
  auto got2 = InnerJoin(a, b, EqA(), ctx2);
  ASSERT_TRUE(got2.ok()) << got2.status().ToString();
  EXPECT_FALSE(st2.bloom);
  EXPECT_TRUE(Relation::BagEquals(reference, *got2));
}

TEST(BloomSpillTest, FilterCutsProbeBytesWrittenToDisk) {
  // Mostly-unmatched probe side: the partitioning-pass filter should keep
  // the bulk of the probe rows off disk entirely.
  Relation a = RandomRel("ra", 500, 51, 2000, 0.0);
  Relation b = RandomRel("rb", 120, 52, 60, 0.0);
  Predicate p = EqA();

  auto spilled_run = [&](BloomMode mode, OperatorStats* st) {
    ResourceBudget budget;
    budget.WithMaxMemory(4 * 1024);
    SpillConfig cfg;
    cfg.enabled = true;
    cfg.partitions = 4;
    cfg.max_recursion = 2;
    ExecContext ctx;
    ctx.bloom = mode;
    ctx.budget = &budget;
    ctx.spill = &cfg;
    ctx.stats = st;
    return InnerJoin(a, b, p, ctx);
  };

  OperatorStats off_stats, on_stats;
  auto off = spilled_run(BloomMode::kOff, &off_stats);
  auto on = spilled_run(BloomMode::kForce, &on_stats);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_TRUE(Relation::BagEquals(*off, *on));
  ASSERT_TRUE(off_stats.spilled);
  ASSERT_TRUE(on_stats.spilled);
  EXPECT_TRUE(on_stats.bloom);
  EXPECT_GT(on_stats.bloom_rejects, 0u);
  // The rejected probe rows were never written: strictly fewer spill
  // bytes than the filter-free run.
  EXPECT_LT(on_stats.spill_bytes_written, off_stats.spill_bytes_written);
}

TEST(BloomJoinTest, AutoModeEngagesOnLargeProbeSides) {
  // 2048-row probe side with a small build side crosses the kAuto
  // thresholds; the default context should pick the filter up without any
  // explicit opt-in.
  Relation a = RandomRel("ra", 2048, 61, 4000, 0.0);
  Relation b = RandomRel("rb", 200, 62, 100, 0.0);
  OperatorStats st;
  ExecContext ctx;  // defaults: BloomMode::kAuto
  ctx.stats = &st;
  ASSERT_TRUE(InnerJoin(a, b, EqA(), ctx).ok());
  EXPECT_TRUE(st.bloom);
  EXPECT_GT(st.bloom_checks, 0u);

  // A small probe side stays filter-free under kAuto.
  Relation a2 = RandomRel("ra", 100, 63, 40, 0.0);
  OperatorStats st2;
  ExecContext ctx2;
  ctx2.stats = &st2;
  ASSERT_TRUE(InnerJoin(a2, b, EqA(), ctx2).ok());
  EXPECT_FALSE(st2.bloom);
}

TEST(BloomJoinTest, AutoModeDisarmsOnHighMatchRates) {
  // Every probe key lands in the build domain, so the filter rejects
  // ~nothing; kAuto must notice at the calibration point and stop paying
  // for checks (bloom_checks freezes near kBloomCalibrateChecks while
  // probe_rows keeps counting). kForce keeps checking to the end.
  Relation a = RandomRel("ra", 8192, 71, 100, 0.0);
  Relation b = RandomRel("rb", 200, 72, 100, 0.0);

  auto run = [&](BloomMode bloom, BatchMode batch, OperatorStats* st) {
    ExecContext ctx;
    ctx.bloom = bloom;
    ctx.batch = batch;
    ctx.stats = st;
    return InnerJoin(a, b, EqA(), ctx);
  };

  OperatorStats off_st;
  auto reference = run(BloomMode::kOff, BatchMode::kOff, &off_st);
  ASSERT_TRUE(reference.ok());

  for (BatchMode batch : {BatchMode::kOff, BatchMode::kForce}) {
    OperatorStats st;
    auto result = run(BloomMode::kAuto, batch, &st);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(Relation::BagEquals(*reference, *result));
    EXPECT_TRUE(st.bloom);
    EXPECT_GE(st.bloom_checks, exec::kBloomCalibrateChecks);
    EXPECT_LT(st.bloom_checks, st.probe_rows)
        << "filter kept checking after calibration said it cannot win";

    OperatorStats forced;
    ASSERT_TRUE(run(BloomMode::kForce, batch, &forced).ok());
    EXPECT_EQ(forced.bloom_checks, forced.probe_rows);
  }
}

TEST(BloomJoinTest, ParallelAutoNeedsTheLargerProbeFloor) {
  // 4096 probe rows clear the serial kAuto floor but not the parallel
  // one: the morsel path pays (lanes + 1) filter builds and a merge, so
  // kAuto keeps it filter-free until kMinBloomProbeRowsParallel.
  Relation a = RandomRel("ra", 4096, 81, 4000, 0.0);
  Relation b = RandomRel("rb", 200, 82, 100, 0.0);
  Executor executor(4);
  executor.set_min_parallel_rows(1);

  OperatorStats st;
  ExecContext ctx;  // BloomMode::kAuto
  ctx.executor = &executor;
  ctx.stats = &st;
  ASSERT_TRUE(InnerJoin(a, b, EqA(), ctx).ok());
  EXPECT_FALSE(st.bloom);

  OperatorStats forced;
  ExecContext ctx2;
  ctx2.bloom = BloomMode::kForce;
  ctx2.executor = &executor;
  ctx2.stats = &forced;
  ASSERT_TRUE(InnerJoin(a, b, EqA(), ctx2).ok());
  EXPECT_TRUE(forced.bloom);
  EXPECT_GT(forced.bloom_checks, 0u);
}

}  // namespace
}  // namespace gsopt
