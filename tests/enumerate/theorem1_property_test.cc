// Experiment T1 (DESIGN.md): Theorem 1 as a standalone statement -- for a
// randomly generated simple query whose ROOT operator carries a complex
// conjunctive predicate, deferring any single conjunct to a root
// generalized selection with the DeferredGroups-computed preserved sets
// yields an equivalent query, for all three operator cases of the theorem.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "algebra/simplify.h"
#include "base/rng.h"
#include "enumerate/random_query.h"
#include "hypergraph/analysis.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Theorem1Case {
  uint64_t seed;
  OpKind root_op;
};

class Theorem1Property : public ::testing::TestWithParam<Theorem1Case> {};

TEST_P(Theorem1Property, DeferredConjunctWithTheoremGroupsIsEquivalent) {
  const Theorem1Case& c = GetParam();
  Rng rng(c.seed);

  // Random simple left part over r1..r3, random right part over r4..r5,
  // joined at the root by a complex predicate.
  RandomQueryOptions qopt;
  qopt.num_rels = 3;
  qopt.loj_prob = 0.4;
  qopt.foj_prob = 0.15;
  qopt.extra_atom_prob = 0.3;
  NodePtr left = MakeRandomQuery(qopt, &rng);

  NodePtr right = Node::LeftOuterJoin(
      Node::Leaf("r4"), Node::Leaf("r5"),
      Predicate(MakeAtom("r4", "a", CmpOp::kEq, "r5", "a")));

  // Complex root predicate: p1 links r1-r4, p2 links r2-r5.
  Atom p1 = MakeAtom("r1", "b", CmpOp::kLe, "r4", "b");
  Atom p2 = MakeAtom("r2", "c", CmpOp::kEq, "r5", "c");
  Predicate both({p1, p2});

  NodePtr query =
      SimplifyOuterJoins(Node::Binary(c.root_op, left, right, both));
  if (query->kind() != c.root_op) {
    GTEST_SKIP() << "root operator simplified away";
  }

  auto hor = BuildHypergraph(query);
  ASSERT_TRUE(hor.ok()) << query->ToString();
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);

  // Locate the root edge (the one whose atoms include p1).
  int root_edge = -1;
  for (const Hyperedge& e : h.edges()) {
    for (const EdgeAtom& ea : e.atoms) {
      if (ea.atom.SameAs(p1)) root_edge = e.id;
    }
  }
  ASSERT_GE(root_edge, 0);

  // Defer p1: Q' keeps p2 only; compensate with Theorem-1 groups.
  NodePtr q_prime = Node::Binary(c.root_op, query->left(), query->right(),
                                 Predicate(p2));
  std::vector<RelSet> groups = an.DeferredGroups(root_edge);
  NodePtr compensated = Node::GeneralizedSelection(
      q_prime, Predicate(p1), an.ToPreservedGroups(groups));

  for (uint64_t dseed : {c.seed + 1, c.seed + 2}) {
    Catalog cat;
    Rng drng(dseed);
    RandomRelationOptions ropt;
    ropt.num_rows = 7;
    ropt.domain = 3;
    ropt.null_fraction = 0.12;
    AddRandomTables(5, ropt, &drng, &cat);
    auto eq = ExecutionEquivalent(query, compensated, cat);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << "dseed " << dseed << "\noriginal: "
                     << query->ToString()
                     << "\ncompensated: " << compensated->ToString();
  }
}

std::vector<Theorem1Case> MakeCases() {
  std::vector<Theorem1Case> cases;
  uint64_t seed = 7000;
  for (OpKind op : {OpKind::kInnerJoin, OpKind::kLeftOuterJoin,
                    OpKind::kRightOuterJoin, OpKind::kFullOuterJoin}) {
    for (int i = 0; i < 8; ++i) {
      cases.push_back({seed++, op});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RootOperators, Theorem1Property,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace gsopt
