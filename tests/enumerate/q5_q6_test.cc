// Experiments Q5/Q6 (DESIGN.md): enumeration of the paper's §3 multi-
// complex-predicate examples -- every emitted plan must match the
// as-written result, the GS-compensated families the paper displays must
// be present, and dependent predicates must break correctly.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "enumerate/enumerator.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Predicate P(const std::string& r1, const std::string& c1,
            const std::string& r2, const std::string& c2) {
  return Predicate(MakeAtom(r1, c1, CmpOp::kEq, r2, c2));
}

// Q5 = (r1 <->p12^p13 (r2 ->p23 r3)) ->p24 (r4 ->p45^p46 (r5 JOIN_p56 r6))
NodePtr BuildQ5() {
  Predicate p12_13 = Predicate::And(P("r1", "a", "r2", "a"),
                                    P("r1", "b", "r3", "b"));
  Predicate p45_46 = Predicate::And(P("r4", "a", "r5", "a"),
                                    P("r4", "b", "r6", "b"));
  NodePtr left = Node::FullOuterJoin(
      Node::Leaf("r1"),
      Node::LeftOuterJoin(Node::Leaf("r2"), Node::Leaf("r3"),
                          P("r2", "c", "r3", "c")),
      p12_13);
  NodePtr right = Node::LeftOuterJoin(
      Node::Leaf("r4"),
      Node::Join(Node::Leaf("r5"), Node::Leaf("r6"), P("r5", "c", "r6", "c")),
      p45_46);
  return Node::LeftOuterJoin(left, right, P("r2", "b", "r4", "c"));
}

// Q6 = r1 <->p12^p14 (r2 ->p23^p24 (r3 ->p34 r4))
NodePtr BuildQ6() {
  Predicate p12_14 = Predicate::And(P("r1", "a", "r2", "a"),
                                    P("r1", "c", "r4", "c"));
  Predicate p23_24 = Predicate::And(P("r2", "b", "r3", "b"),
                                    P("r2", "c", "r4", "a"));
  NodePtr r34 = Node::LeftOuterJoin(Node::Leaf("r3"), Node::Leaf("r4"),
                                    P("r3", "a", "r4", "b"));
  NodePtr r234 = Node::LeftOuterJoin(Node::Leaf("r2"), r34, p23_24);
  return Node::FullOuterJoin(Node::Leaf("r1"), r234, p12_14);
}

Catalog MakeCatalog(uint64_t seed, int n) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = 6;
  opt.domain = 3;
  opt.null_fraction = 0.1;
  AddRandomTables(n, opt, &rng, &cat);
  return cat;
}

void CheckAllPlansEquivalent(const NodePtr& query, int num_rels,
                             std::vector<uint64_t> seeds,
                             size_t* num_plans = nullptr) {
  auto hor = BuildHypergraph(query);
  ASSERT_TRUE(hor.ok()) << hor.status().ToString();
  EnumOptions opts;
  opts.mode = EnumMode::kGeneralized;
  auto plans = Enumerator(*hor, opts).EnumerateAll();
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  if (num_plans != nullptr) *num_plans = plans->size();
  for (uint64_t seed : seeds) {
    Catalog cat = MakeCatalog(seed, num_rels);
    auto ref = Execute(query, cat);
    ASSERT_TRUE(ref.ok());
    for (const PlanCandidate& c : *plans) {
      auto got = Execute(c.expr, cat);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(Relation::BagEquals(*ref, *got))
          << "seed " << seed << "\nquery: " << query->ToString()
          << "\nplan: " << c.expr->ToString();
    }
  }
}

TEST(Q5Test, AllPlansEquivalent) {
  size_t n = 0;
  CheckAllPlansEquivalent(BuildQ5(), 6, {41, 42}, &n);
  // Two independent complex predicates: the space must include break-ups
  // of either and both.
  EXPECT_GT(n, 8u);
}

TEST(Q5Test, BothComplexPredicatesBreakIndependently) {
  auto hor = BuildHypergraph(BuildQ5());
  ASSERT_TRUE(hor.ok());
  EnumOptions opts;
  opts.mode = EnumMode::kGeneralized;
  auto plans = Enumerator(*hor, opts).EnumerateAll();
  ASSERT_TRUE(plans.ok());
  bool p13_deferred = false, p46_deferred = false, both = false;
  for (const PlanCandidate& c : *plans) {
    std::string s = c.expr->ToString();
    bool d13 = s.find("GS[r1.b = r3.b") != std::string::npos;
    bool d46 = s.find("GS[r4.b = r6.b") != std::string::npos;
    p13_deferred |= d13;
    p46_deferred |= d46;
    both |= (d13 && d46);
  }
  EXPECT_TRUE(p13_deferred);
  EXPECT_TRUE(p46_deferred);
  EXPECT_TRUE(both);  // the paper's stacked sigma* sigma* family
}

TEST(Q6Test, AllPlansEquivalent) {
  size_t n = 0;
  CheckAllPlansEquivalent(BuildQ6(), 4, {51, 52, 53}, &n);
  EXPECT_GE(n, 4u);
}

TEST(Q6Test, DependentPredicatesProduceStackedCompensations) {
  auto hor = BuildHypergraph(BuildQ6());
  ASSERT_TRUE(hor.ok());
  EnumOptions opts;
  opts.mode = EnumMode::kGeneralized;
  auto plans = Enumerator(*hor, opts).EnumerateAll();
  ASSERT_TRUE(plans.ok());
  // The paper's six-expression family breaks BOTH P1 and P2: at least one
  // plan must carry two stacked generalized selections, with the inner
  // edge's compensation below the outer edge's (h2's GS inside h1's GS).
  bool stacked = false;
  for (const PlanCandidate& c : *plans) {
    const Node* n = c.expr.get();
    if (n->kind() == OpKind::kGeneralizedSelection &&
        n->left()->kind() == OpKind::kGeneralizedSelection) {
      stacked = true;
      // Outer GS belongs to the FOJ edge (references r1).
      EXPECT_NE(n->pred().ToString().find("r1."), std::string::npos);
    }
  }
  EXPECT_TRUE(stacked);
}

TEST(Q6Test, BaselineSubsetOfGeneralized) {
  auto hor = BuildHypergraph(BuildQ6());
  ASSERT_TRUE(hor.ok());
  EnumOptions base;
  base.mode = EnumMode::kBaseline;
  EnumOptions gen;
  gen.mode = EnumMode::kGeneralized;
  auto nb = Enumerator(*hor, base).CountAssociationTrees();
  auto ng = Enumerator(*hor, gen).CountAssociationTrees();
  ASSERT_TRUE(nb.ok());
  ASSERT_TRUE(ng.ok());
  EXPECT_GE(*ng, *nb);
}

TEST(PartialKeepsTest, DisablingPartialKeepsShrinksSpace) {
  auto hor = BuildHypergraph(BuildQ6());
  ASSERT_TRUE(hor.ok());
  EnumOptions with;
  with.mode = EnumMode::kGeneralized;
  with.enumerate_partial_keeps = true;
  EnumOptions without;
  without.mode = EnumMode::kGeneralized;
  without.enumerate_partial_keeps = false;
  auto pw = Enumerator(*hor, with).EnumerateAll();
  auto po = Enumerator(*hor, without).EnumerateAll();
  ASSERT_TRUE(pw.ok());
  ASSERT_TRUE(po.ok());
  EXPECT_GT(pw->size(), po->size());
}

TEST(DpPruningTest, PrunedFrontierContainsAMinimalCostPlan) {
  NodePtr q6 = BuildQ6();
  auto hor = BuildHypergraph(q6);
  ASSERT_TRUE(hor.ok());
  // Cost = expression size (deterministic, catalog-free).
  auto cost = [](const NodePtr& n) { return static_cast<double>(n->NumOps()); };
  EnumOptions full;
  full.mode = EnumMode::kGeneralized;
  EnumOptions pruned;
  pruned.mode = EnumMode::kGeneralized;
  pruned.cost_fn = cost;
  auto pf = Enumerator(*hor, full).EnumerateAll();
  auto pp = Enumerator(*hor, pruned).EnumerateAll();
  ASSERT_TRUE(pf.ok());
  ASSERT_TRUE(pp.ok());
  EXPECT_LE(pp->size(), pf->size());
  double best_full = 1e18, best_pruned = 1e18;
  for (const auto& c : *pf) best_full = std::min(best_full, cost(c.expr));
  for (const auto& c : *pp) best_pruned = std::min(best_pruned, cost(c.expr));
  EXPECT_EQ(best_full, best_pruned);
}

}  // namespace
}  // namespace gsopt
