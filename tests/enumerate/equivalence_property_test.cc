// The soundness gate (DESIGN.md §6): for randomized join/outer-join queries
// with simple and complex conjunctive predicates, EVERY plan the enumerator
// emits -- in every mode -- must reproduce the as-written result on
// randomized databases (including NULLs). This exercises Theorem 1's
// preserved groups, the MGOJ compensation rules and the identity machinery
// end to end.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "algebra/simplify.h"
#include "base/rng.h"
#include "enumerate/enumerator.h"
#include "enumerate/random_query.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Case {
  uint64_t seed;
  int num_rels;
  double loj_prob;
  double foj_prob;
  double extra_atom_prob;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << "seed=" << c.seed << " n=" << c.num_rels
            << " loj=" << c.loj_prob << " foj=" << c.foj_prob
            << " extra=" << c.extra_atom_prob;
}

class EquivalenceProperty : public ::testing::TestWithParam<Case> {};

Catalog MakeCatalog(uint64_t seed, int num_rels) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = 7;
  opt.domain = 3;  // small domain: many matches AND many mismatches
  opt.null_fraction = 0.12;
  AddRandomTables(num_rels, opt, &rng, &cat);
  return cat;
}

TEST_P(EquivalenceProperty, AllPlansMatchAsWrittenResult) {
  const Case& c = GetParam();
  Rng rng(c.seed);
  RandomQueryOptions qopt;
  qopt.num_rels = c.num_rels;
  qopt.loj_prob = c.loj_prob;
  qopt.foj_prob = c.foj_prob;
  qopt.extra_atom_prob = c.extra_atom_prob;
  NodePtr raw = MakeRandomQuery(qopt, &rng);

  // The paper's precondition: reordering operates on SIMPLE queries
  // ([BHAR95c] simplification applied first). Verify the simplification
  // pass itself preserves semantics, then reorder the simple query.
  NodePtr query = SimplifyOuterJoins(raw);
  ASSERT_TRUE(IsSimpleQuery(query));
  {
    Catalog cat = MakeCatalog(c.seed * 17 + 5, c.num_rels);
    auto eq = ExecutionEquivalent(raw, query, cat);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << "simplification changed semantics:\nraw: "
                     << raw->ToString() << "\nsimplified: "
                     << query->ToString();
  }

  auto hor = BuildHypergraph(query);
  ASSERT_TRUE(hor.ok()) << hor.status().ToString() << "\n"
                        << query->ToString();
  ASSERT_TRUE(hor->IsAcyclic()) << query->ToString();

  for (EnumMode mode :
       {EnumMode::kBinaryOnly, EnumMode::kBaseline, EnumMode::kGeneralized}) {
    EnumOptions opts;
    opts.mode = mode;
    auto plans = Enumerator(*hor, opts).EnumerateAll();
    if (!plans.ok()) {
      // Binary-only mode can legitimately fail to produce any plan for
      // queries that need MGOJ; other modes must always cover the query.
      EXPECT_EQ(mode, EnumMode::kBinaryOnly)
          << plans.status().ToString() << "\n" << query->ToString();
      continue;
    }
    ASSERT_FALSE(plans->empty());

    for (uint64_t dseed : {c.seed * 31 + 1, c.seed * 31 + 2}) {
      Catalog cat = MakeCatalog(dseed, c.num_rels);
      auto ref = Execute(query, cat);
      ASSERT_TRUE(ref.ok());
      for (const PlanCandidate& cand : *plans) {
        auto got = Execute(cand.expr, cat);
        ASSERT_TRUE(got.ok()) << cand.expr->ToString();
        ASSERT_TRUE(Relation::BagEquals(*ref, *got))
            << "mode " << EnumModeName(mode) << " dseed " << dseed
            << "\nquery: " << query->ToString()
            << "\nplan:  " << cand.expr->ToString()
            << "\nexpected:\n" << ref->ToString(20)
            << "\ngot:\n" << got->ToString(20);
      }
    }
  }
}

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  uint64_t seed = 1000;
  // Join-only queries (sanity: classic join reordering).
  for (int i = 0; i < 6; ++i) {
    cases.push_back({seed++, 3 + i % 3, 0.0, 0.0, 0.5});
  }
  // Outer-join heavy, simple predicates.
  for (int i = 0; i < 8; ++i) {
    cases.push_back({seed++, 3 + i % 3, 0.7, 0.0, 0.0});
  }
  // Mixed join/LOJ with complex predicates (the paper's target class).
  for (int i = 0; i < 14; ++i) {
    cases.push_back({seed++, 3 + i % 3, 0.45, 0.0, 0.6});
  }
  // Full outer joins in the mix.
  for (int i = 0; i < 12; ++i) {
    cases.push_back({seed++, 3 + i % 3, 0.35, 0.3, 0.5});
  }
  // Larger queries, everything enabled.
  for (int i = 0; i < 6; ++i) {
    cases.push_back({seed++, 5, 0.4, 0.15, 0.5});
  }
  // Deep-outer-join stress: mostly outer joins, frequent complex
  // predicates (exercises operator inversion + compensation rules).
  for (int i = 0; i < 20; ++i) {
    cases.push_back({seed++, 3 + i % 3, 0.6, 0.2, 0.7});
  }
  // Pure FOJ chains with complex predicates.
  for (int i = 0; i < 10; ++i) {
    cases.push_back({seed++, 3 + i % 2, 0.0, 0.8, 0.6});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, EquivalenceProperty,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace gsopt
