// Experiment Q4 (DESIGN.md): the paper's Example 3.2 break-up family, and
// the completeness gap between Definition 2.3 and Definition 3.2 trees.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "enumerate/enumerator.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Predicate P(const std::string& r1, const std::string& c1,
            const std::string& r2, const std::string& c2) {
  return Predicate(MakeAtom(r1, c1, CmpOp::kEq, r2, c2));
}

// Q4 = r1 ->p12 (r2 ->p24^p25 ((r4 JOIN_p45 r5) JOIN_p35 r3))
NodePtr BuildQ4() {
  Predicate p24_25 = Predicate::And(P("r2", "a", "r4", "a"),
                                    P("r2", "b", "r5", "b"));
  NodePtr r45 = Node::Join(Node::Leaf("r4"), Node::Leaf("r5"),
                           P("r4", "c", "r5", "c"));
  NodePtr r453 = Node::Join(r45, Node::Leaf("r3"), P("r5", "a", "r3", "a"));
  NodePtr right = Node::LeftOuterJoin(Node::Leaf("r2"), r453, p24_25);
  return Node::LeftOuterJoin(Node::Leaf("r1"), right, P("r1", "a", "r2", "a"));
}

Catalog MakeCatalog(uint64_t seed, int num_rels, int rows, int domain) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = domain;
  opt.null_fraction = 0.1;
  AddRandomTables(num_rels, opt, &rng, &cat);
  return cat;
}

TEST(Q4Test, GeneralizedModeStrictlyEnlargesTreeSpace) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok());
  EnumOptions base;
  base.mode = EnumMode::kBaseline;
  EnumOptions gen;
  gen.mode = EnumMode::kGeneralized;
  auto nbase = Enumerator(*hor, base).CountAssociationTrees();
  auto ngen = Enumerator(*hor, gen).CountAssociationTrees();
  ASSERT_TRUE(nbase.ok());
  ASSERT_TRUE(ngen.ok());
  // Definition 2.3 requires r4,r5 combined before r2 joins them; breaking
  // h2 into p24/p25 sub-edges admits (r2.r4) and (r2.r5) first.
  EXPECT_GT(*ngen, *nbase);
  // The paper lists association trees like (r1.((r2.r4).(r5.r3))): in the
  // relaxed definition both break-ups of h2 are available.
  EXPECT_GE(*ngen, 4);
}

TEST(Q4Test, PaperBreakupExpressionsAreEnumerated) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok());
  EnumOptions gen;
  gen.mode = EnumMode::kGeneralized;
  auto plans = Enumerator(*hor, gen).EnumerateAll();
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();

  // Expect at least one plan deferring p24 and one deferring p25 with the
  // composite preserved group {r1, r2} at the root.
  bool defer_p24 = false, defer_p25 = false;
  for (const PlanCandidate& c : *plans) {
    if (c.expr->kind() != OpKind::kGeneralizedSelection) continue;
    std::string p = c.expr->pred().ToString();
    std::string g;
    for (const auto& grp : c.expr->groups()) {
      for (const auto& rel : grp) g += rel + " ";
    }
    if (p.find("r2.a = r4.a") != std::string::npos &&
        g.find("r1") != std::string::npos &&
        g.find("r2") != std::string::npos) {
      defer_p24 = true;
    }
    if (p.find("r2.b = r5.b") != std::string::npos &&
        g.find("r1") != std::string::npos &&
        g.find("r2") != std::string::npos) {
      defer_p25 = true;
    }
  }
  EXPECT_TRUE(defer_p24);
  EXPECT_TRUE(defer_p25);
}

TEST(Q4Test, EveryGeneralizedPlanIsExecutionEquivalent) {
  NodePtr q4 = BuildQ4();
  auto hor = BuildHypergraph(q4);
  ASSERT_TRUE(hor.ok());
  EnumOptions gen;
  gen.mode = EnumMode::kGeneralized;
  auto plans = Enumerator(*hor, gen).EnumerateAll();
  ASSERT_TRUE(plans.ok());
  EXPECT_GE(plans->size(), 4u);

  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    Catalog cat = MakeCatalog(seed, 5, 8, 4);
    auto ref = Execute(q4, cat);
    ASSERT_TRUE(ref.ok());
    for (const PlanCandidate& c : *plans) {
      auto got = Execute(c.expr, cat);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(Relation::BagEquals(*ref, *got))
          << "seed " << seed << "\nplan: " << c.expr->ToString()
          << "\nexpected:\n" << ref->ToString() << "\ngot:\n"
          << got->ToString();
    }
  }
}

TEST(Q4Test, BaselinePlansAreExecutionEquivalentToo) {
  NodePtr q4 = BuildQ4();
  auto hor = BuildHypergraph(q4);
  ASSERT_TRUE(hor.ok());
  EnumOptions base;
  base.mode = EnumMode::kBaseline;
  auto plans = Enumerator(*hor, base).EnumerateAll();
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  for (uint64_t seed : {7ull, 8ull}) {
    Catalog cat = MakeCatalog(seed, 5, 8, 4);
    auto ref = Execute(q4, cat);
    ASSERT_TRUE(ref.ok());
    for (const PlanCandidate& c : *plans) {
      auto got = Execute(c.expr, cat);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(Relation::BagEquals(*ref, *got))
          << "plan: " << c.expr->ToString();
    }
  }
}

TEST(Q4Test, BaselineModeNeverDefersAtoms) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok());
  EnumOptions base;
  base.mode = EnumMode::kBaseline;
  auto plans = Enumerator(*hor, base).EnumerateAll();
  ASSERT_TRUE(plans.ok());
  for (const PlanCandidate& c : *plans) {
    EXPECT_EQ(c.num_deferred, 0);
    EXPECT_NE(c.expr->kind(), OpKind::kGeneralizedSelection);
  }
}

TEST(Q4Test, AsWrittenShapeIsAmongEnumeratedPlans) {
  NodePtr q4 = BuildQ4();
  auto hor = BuildHypergraph(q4);
  ASSERT_TRUE(hor.ok());
  for (EnumMode mode : {EnumMode::kBaseline, EnumMode::kGeneralized}) {
    EnumOptions o;
    o.mode = mode;
    auto plans = Enumerator(*hor, o).EnumerateAll();
    ASSERT_TRUE(plans.ok());
    bool found = false;
    for (const PlanCandidate& c : *plans) {
      if (c.expr->ToString() == q4->ToString()) found = true;
    }
    EXPECT_TRUE(found) << "mode " << EnumModeName(mode);
  }
}

}  // namespace
}  // namespace gsopt
