// Unit tests for the random query generator, focused on the general-class
// extensions: duplicate column-pair predicates (the `p AND p` shape that
// tautological-conjunct handling must survive), GROUP BY views with
// aggregated-column predicates, and generation determinism.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "algebra/simplify.h"
#include "base/rng.h"
#include "enumerate/enumerator.h"
#include "enumerate/random_query.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"
#include "testing/oracles.h"

namespace gsopt {
namespace {

// Does any predicate in the tree hold two atoms over the same column pair?
// `exact` additionally requires the comparison operator to match (the
// `p AND p` duplicate-conjunct shape).
bool HasDupPair(const NodePtr& node, bool exact) {
  if (node == nullptr) return false;
  const auto& atoms = node->pred().atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i].lhs == nullptr || atoms[j].lhs == nullptr ||
          atoms[i].rhs == nullptr || atoms[j].rhs == nullptr) {
        continue;
      }
      bool same_cols = atoms[i].lhs->ToString() == atoms[j].lhs->ToString() &&
                       atoms[i].rhs->ToString() == atoms[j].rhs->ToString();
      if (same_cols && (!exact || atoms[i].SameAs(atoms[j]))) return true;
    }
  }
  return HasDupPair(node->left(), exact) || HasDupPair(node->right(), exact);
}

TEST(RandomQueryTest, DupPairProbabilityRepeatsColumnPairs) {
  RandomQueryOptions opt;
  opt.num_rels = 3;
  opt.extra_atom_prob = 1.0;
  opt.dup_pair_prob = 1.0;
  int dup_trees = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    RandomQueryFeatures features;
    NodePtr q = MakeRandomQuery(opt, &rng, &features);
    EXPECT_TRUE(features.has_dup_pair) << "seed " << seed;
    if (HasDupPair(q, /*exact=*/false)) ++dup_trees;
  }
  EXPECT_EQ(dup_trees, 20);
}

TEST(RandomQueryTest, DupPairDisabledNeverRepeats) {
  // The pre-fix behaviour, now an explicit knob: dup_pair_prob = 0 can
  // still repeat a pair by chance through independent draws, but the
  // drawn-again path must be reported via features only when the dup
  // branch fired.
  RandomQueryOptions opt;
  opt.num_rels = 3;
  opt.extra_atom_prob = 1.0;
  opt.dup_pair_prob = 0.0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    RandomQueryFeatures features;
    MakeRandomQuery(opt, &rng, &features);
    EXPECT_FALSE(features.has_dup_pair) << "seed " << seed;
  }
}

TEST(RandomQueryTest, ExactDuplicateConjunctIsGeneratedAndStaysCorrect) {
  // With the operator drawn independently, some seeds produce the exact
  // `p AND p` duplicate conjunct. Those queries must still survive the
  // whole pipeline: every enumerated plan bag-equals the syntactic result
  // (tautological-conjunct handling in simplification and enumeration).
  RandomQueryOptions opt;
  opt.num_rels = 3;
  opt.extra_atom_prob = 1.0;
  opt.dup_pair_prob = 1.0;
  int exact_dups = 0;
  for (uint64_t seed = 1; seed <= 40 && exact_dups < 3; ++seed) {
    Rng rng(seed);
    NodePtr q = MakeRandomQuery(opt, &rng);
    if (!HasDupPair(q, /*exact=*/true)) continue;
    ++exact_dups;

    Catalog cat;
    Rng drng(seed * 101 + 7);
    RandomRelationOptions dopt;
    dopt.num_rows = 7;
    dopt.domain = 3;
    dopt.null_fraction = 0.15;
    AddRandomTables(opt.num_rels, dopt, &drng, &cat);

    testing::OracleOptions oopt;
    oopt.run_executor = false;  // plan space + degradation + TLP suffice
    Rng orng(seed * 13 + 1);
    auto outcome = testing::CheckQuery(q, cat, oopt, &orng);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_FALSE(outcome->skipped);
    EXPECT_FALSE(outcome->failed)
        << "seed " << seed << ": " << outcome->ToString() << "\n"
        << q->ToString();
    EXPECT_GT(outcome->plans_checked, 0u);
  }
  EXPECT_GE(exact_dups, 3) << "no seed produced an exact duplicate conjunct";
}

TEST(RandomQueryTest, GeneralClassCoversViewsAndAggPredicates) {
  RandomQueryOptions opt;
  opt.num_rels = 4;
  opt.view_prob = 1.0;
  opt.agg_pred_prob = 1.0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    RandomQueryFeatures features;
    NodePtr q = MakeGeneralRandomQuery(opt, &rng, &features);
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(features.has_view) << "seed " << seed;
    EXPECT_TRUE(features.has_agg_pred) << "seed " << seed;
  }
}

TEST(RandomQueryTest, SameSeedSameQuery) {
  RandomQueryOptions opt;
  opt.num_rels = 5;
  opt.view_prob = 0.5;
  opt.dup_pair_prob = 0.3;
  opt.extra_atom_prob = 0.7;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng a(seed), b(seed);
    NodePtr qa = MakeGeneralRandomQuery(opt, &a);
    NodePtr qb = MakeGeneralRandomQuery(opt, &b);
    EXPECT_EQ(qa->ToString(), qb->ToString()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gsopt
