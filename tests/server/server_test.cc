// The network serving layer end-to-end over loopback: wire-protocol
// round-trips, the HELLO handshake contract, many concurrent connections
// with mixed tenants, catalog bumps mid-traffic (stale templates are
// never served), forced overload (sheds are typed wire errors, nothing
// hangs), per-tenant quota isolation, and graceful drain. Runs under tsan
// in CI (.github/workflows/ci.yml).
#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "relational/datagen.h"
#include "server/client.h"
#include "server/protocol.h"

namespace gsopt::server {
namespace {

Catalog MakeCatalog(int tables = 4, int rows = 30) {
  Catalog cat;
  Rng rng(7);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = 8;
  opt.null_fraction = 0.1;
  AddRandomTables(tables, opt, &rng, &cat);
  return cat;
}

// ---------------------------------------------------------------------------
// Protocol payload round-trips (no sockets).

TEST(Protocol, HelloRoundTrip) {
  std::string p = EncodeHello(kProtocolVersion, "tenant-a");
  uint32_t version = 0;
  std::string tenant;
  ASSERT_TRUE(DecodeHello(p, &version, &tenant).ok());
  EXPECT_EQ(version, kProtocolVersion);
  EXPECT_EQ(tenant, "tenant-a");
}

TEST(Protocol, ExecuteRoundTripAllValueKinds) {
  std::vector<Value> params = {Value::Int(-17), Value::Double(2.5),
                               Value::String(std::string("x\0y", 3)),
                               Value::Null()};
  std::string p = EncodeExecute(99, params);
  uint64_t id = 0;
  std::vector<Value> out;
  ASSERT_TRUE(DecodeExecute(p, &id, &out).ok());
  EXPECT_EQ(id, 99u);
  ASSERT_EQ(out.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(Value::IdentityEquals(out[i], params[i])) << "param " << i;
  }
  EXPECT_TRUE(out[3].is_null());
}

TEST(Protocol, ErrorRoundTripPreservesClass) {
  std::string p = EncodeError(Status::Shed("queue full"));
  ErrorClass cls = ErrorClass::kOk;
  std::string message;
  ASSERT_TRUE(DecodeError(p, &cls, &message).ok());
  EXPECT_EQ(cls, ErrorClass::kShed);
  EXPECT_EQ(message, "queue full");

  p = EncodeError(Status::Unavailable("spill io"));
  ASSERT_TRUE(DecodeError(p, &cls, &message).ok());
  EXPECT_EQ(cls, ErrorClass::kTransient);
}

TEST(Protocol, MalformedPayloadsRejected) {
  uint32_t version;
  std::string tenant;
  EXPECT_FALSE(DecodeHello("\x01", &version, &tenant).ok());
  uint64_t id;
  std::vector<Value> params;
  // Truncated value list: claims 3 params, carries 0.
  std::string p;
  AppendU64(&p, 1);
  AppendU32(&p, 3);
  EXPECT_FALSE(DecodeExecute(p, &id, &params).ok());
  // Trailing garbage after a well-formed payload.
  p = EncodeHello(kProtocolVersion, "t");
  p.push_back('x');
  EXPECT_FALSE(DecodeHello(p, &version, &tenant).ok());
}

TEST(Protocol, ExtractFrameHandlesPartialBuffers) {
  std::string payload = EncodeSql("SELECT * FROM r1");
  std::string wire;
  AppendU32(&wire, static_cast<uint32_t>(1 + payload.size()));
  AppendU8(&wire, static_cast<uint8_t>(FrameType::kQuery));
  wire += payload;

  Frame f;
  // Byte-at-a-time arrival: no frame until the last byte lands.
  std::string buf;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    buf.push_back(wire[i]);
    ASSERT_EQ(ExtractFrame(&buf, &f), 0) << "at byte " << i;
  }
  buf.push_back(wire.back());
  ASSERT_EQ(ExtractFrame(&buf, &f), 1);
  EXPECT_EQ(f.type, FrameType::kQuery);
  EXPECT_TRUE(buf.empty());

  // Two frames back-to-back extract in order.
  buf = wire + wire;
  EXPECT_EQ(ExtractFrame(&buf, &f), 1);
  EXPECT_EQ(ExtractFrame(&buf, &f), 1);
  EXPECT_EQ(ExtractFrame(&buf, &f), 0);
}

TEST(Protocol, OversizedFrameIsProtocolError) {
  std::string buf;
  AppendU32(&buf, kMaxFrameBytes + 1);
  Frame f;
  EXPECT_EQ(ExtractFrame(&buf, &f), -1);
}

// ---------------------------------------------------------------------------
// Server integration over loopback.

TEST(Server, QueryRoundTripMatchesDirectSession) {
  Catalog cat = MakeCatalog();
  GsoptServer server(cat);
  ASSERT_TRUE(server.Start().ok());

  const std::string sql =
      "SELECT * FROM r1 JOIN r2 ON r1.a = r2.a WHERE r1.b = 2";
  Session direct(cat);
  auto expect = direct.Query(sql);
  ASSERT_TRUE(expect.ok());

  auto client = Client::Connect("127.0.0.1", server.port(), "t0");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = client.value().Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(),
            static_cast<size_t>(expect.value().rows.NumRows()));
  // Real (visible) columns only; virtual row-ids never travel.
  EXPECT_EQ(result.value().columns.size(),
            static_cast<size_t>(expect.value().rows.schema().size()));
  server.Stop();
}

TEST(Server, PreparedExecuteIsCacheHitWithVaryingParams) {
  Catalog cat = MakeCatalog();
  GsoptServer server(cat);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect("127.0.0.1", server.port(), "t0");
  ASSERT_TRUE(client.ok());
  Client c = std::move(client).value();

  uint32_t num_params = 0;
  auto stmt = c.Prepare("SELECT * FROM r1 WHERE r1.a = $1", &num_params);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(num_params, 1u);

  Session direct(cat);
  auto direct_stmt = direct.Prepare("SELECT * FROM r1 WHERE r1.a = $1");
  ASSERT_TRUE(direct_stmt.ok());

  for (int64_t v = 0; v < 8; ++v) {
    auto got = c.Execute(stmt.value(), {Value::Int(v)});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = direct_stmt.value().Execute({Value::Int(v)});
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got.value().rows.size(),
              static_cast<size_t>(want.value().rows.NumRows()))
        << "param " << v;
    // Re-executing a prepared template is by definition plan reuse.
    EXPECT_TRUE(got.value().cache_hit);
  }
  server.Stop();
  EXPECT_GE(server.stats().responses_rows, 8u);
}

TEST(Server, UnknownStatementAndBadSqlAreTypedInvalid) {
  Catalog cat = MakeCatalog();
  GsoptServer server(cat);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port(), "t0");
  ASSERT_TRUE(client.ok());
  Client c = std::move(client).value();

  auto bad = c.Query("SELECT FROM WHERE");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().error_class(), ErrorClass::kInvalid);

  auto missing = c.Execute(12345, {});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().error_class(), ErrorClass::kInvalid);

  // The connection survives typed errors: a good query still works.
  auto ok = c.Query("SELECT * FROM r1");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  server.Stop();
}

TEST(Server, HandshakeVersionMismatchRejected) {
  Catalog cat = MakeCatalog(2, 5);
  GsoptServer server(cat);
  ASSERT_TRUE(server.Start().ok());

  // Hand-rolled handshake with a bogus version byte.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(
      WriteFrame(fd, FrameType::kHello, EncodeHello(999, "t0")).ok());
  auto reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, FrameType::kError);
  ErrorClass cls;
  std::string message;
  ASSERT_TRUE(DecodeError(reply.value().payload, &cls, &message).ok());
  EXPECT_EQ(cls, ErrorClass::kInvalid);
  ::close(fd);
  server.Stop();
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

// Many connections, two tenants, concurrent mixed traffic: everything is
// answered, warm repeats hit the plan cache, and the server survives a
// graceful drain with zero protocol errors.
TEST(Server, ManyConnectionsMixedTenants) {
  Catalog cat = MakeCatalog();
  ServerOptions options;
  options.num_workers = 3;
  GsoptServer server(cat, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kConns = 8;
  constexpr int kPerConn = 12;
  std::atomic<int> ok_rows{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server.port(),
                                    t % 2 == 0 ? "alpha" : "beta");
      if (!client.ok()) {
        ++failures;
        return;
      }
      Client c = std::move(client).value();
      auto stmt = c.Prepare("SELECT * FROM r2 WHERE r2.b = $1");
      if (!stmt.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kPerConn; ++i) {
        // Mix: prepared executes, one-shot selects, a join.
        if (i % 3 == 0) {
          auto r = c.Query("SELECT * FROM r1 JOIN r3 ON r1.c = r3.c");
          r.ok() ? ++ok_rows : ++failures;
        } else {
          auto r = c.Execute(stmt.value(), {Value::Int(i % 8)});
          r.ok() ? ++ok_rows : ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ok_rows.load(), kConns * kPerConn);

  server.Stop();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GE(stats.responses_rows, static_cast<uint64_t>(kConns * kPerConn));
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kConns));
}

// A catalog bump mid-traffic: quiesce (in_flight() == 0), mutate, resume.
// The same SQL text must rebind against the new catalog -- the
// version-tagged text memo and epoch-tagged plan cache may never serve a
// stale template.
TEST(Server, CatalogBumpMidTrafficNeverServesStale) {
  Catalog cat = MakeCatalog(3, 20);
  GsoptServer server(cat);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port(), "t0");
  ASSERT_TRUE(client.ok());
  Client c = std::move(client).value();

  // Warm the template + text memo.
  const std::string count_sql = "SELECT * FROM r1";
  auto before = c.Query(count_sql);
  ASSERT_TRUE(before.ok());
  size_t rows_before = before.value().rows.size();

  // A table that does not exist yet: typed invalid, not a crash.
  auto missing = c.Query("SELECT * FROM late_table");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().error_class(), ErrorClass::kInvalid);

  // Quiesce, then mutate the catalog (both mutations bump its version).
  while (server.in_flight() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(cat.Insert("r1", {Value::Int(1), Value::Int(2), Value::Int(3)})
                  .ok());
  ASSERT_TRUE(cat.CreateTable("late_table", {"x"}).ok());
  ASSERT_TRUE(cat.Insert("late_table", {Value::Int(42)}).ok());

  // The SAME statement text now sees the new row (a stale cached template
  // over the old data/stats would still execute against current storage,
  // but a stale TEXT memo or optimizer snapshot would miss the rebind --
  // row count is the observable).
  auto after = c.Query(count_sql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().rows.size(), rows_before + 1);

  // And the previously unknown table binds now.
  auto late = c.Query("SELECT * FROM late_table");
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late.value().rows.size(), 1u);
  server.Stop();
}

// Forced overload: a one-worker server with a tiny admission queue,
// blasted by pipelining clients. Every request must be answered -- some
// with ROWS, the overflow with typed `shed` errors -- and nothing hangs.
TEST(Server, OverloadShedsAreTypedNotHung) {
  Catalog cat = MakeCatalog(2, 40);
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 2;
  GsoptServer server(cat, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kConns = 6;
  constexpr int kPipelined = 20;
  std::atomic<int> rows{0};
  std::atomic<int> sheds{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port(), "t0");
      ASSERT_TRUE(client.ok());
      Client c = std::move(client).value();
      // Pipeline a burst without reading, then drain: the queue bound
      // must shed the overflow instead of buffering it forever.
      for (int i = 0; i < kPipelined; ++i) {
        ASSERT_TRUE(
            c.SendQuery("SELECT * FROM r1 JOIN r2 ON r1.a = r2.a").ok());
      }
      for (int i = 0; i < kPipelined; ++i) {
        auto resp = c.RecvResponse();
        ASSERT_TRUE(resp.ok()) << resp.status().ToString();
        if (resp.value().shed()) {
          ++sheds;
        } else if (resp.value().type == FrameType::kRows) {
          ++rows;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rows.load() + sheds.load() + other.load(), kConns * kPipelined);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(sheds.load(), 0) << "queue bound never engaged";
  EXPECT_GT(rows.load(), 0) << "everything shed: server served nothing";

  server.Stop();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.sheds_total(), static_cast<uint64_t>(sheds.load()));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// Per-tenant quota isolation: a noisy tenant capped at one in-flight
// request across FOUR pipelining connections gets shed (in-flight is
// counted per tenant, not per connection -- one connection alone can
// never exceed one in flight, because responses are ordered), while a
// quiet tenant on the same server sails through untouched.
TEST(Server, TenantQuotaIsolatesNoisyNeighbour) {
  Catalog cat = MakeCatalog(2, 30);
  ServerOptions options;
  options.num_workers = 2;
  options.tenant_quotas["noisy"] = TenantQuota{}.WithMaxConcurrent(1);
  GsoptServer server(cat, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> noisy_sheds{0};
  std::atomic<int> quiet_failures{0};
  std::vector<std::thread> noisy;
  for (int n = 0; n < 4; ++n) {
    noisy.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port(), "noisy");
      ASSERT_TRUE(client.ok());
      Client c = std::move(client).value();
      constexpr int kBurst = 16;
      for (int i = 0; i < kBurst; ++i) {
        ASSERT_TRUE(
            c.SendQuery("SELECT * FROM r1 JOIN r2 ON r1.b = r2.b").ok());
      }
      for (int i = 0; i < kBurst; ++i) {
        auto resp = c.RecvResponse();
        ASSERT_TRUE(resp.ok());
        if (resp.value().shed()) ++noisy_sheds;
      }
    });
  }
  std::thread quiet([&] {
    auto client = Client::Connect("127.0.0.1", server.port(), "quiet");
    ASSERT_TRUE(client.ok());
    Client c = std::move(client).value();
    for (int i = 0; i < 10; ++i) {
      if (!c.Query("SELECT * FROM r2").ok()) ++quiet_failures;
    }
  });
  for (auto& t : noisy) t.join();
  quiet.join();

  EXPECT_GT(noisy_sheds.load(), 0) << "tenant cap never engaged";
  EXPECT_EQ(quiet_failures.load(), 0);
  server.Stop();
  EXPECT_EQ(server.stats().sheds_tenant_quota,
            static_cast<uint64_t>(noisy_sheds.load()));
}

// Stop() while clients are mid-traffic: in-flight work completes, late
// frames are shed (typed), nothing crashes or leaks a hung thread.
TEST(Server, GracefulDrainUnderTraffic) {
  Catalog cat = MakeCatalog(2, 20);
  GsoptServer server(cat);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> answered{0};
  std::thread client_thread([&] {
    auto client = Client::Connect("127.0.0.1", server.port(), "t0");
    if (!client.ok()) return;
    Client c = std::move(client).value();
    while (!stop.load()) {
      auto r = c.Query("SELECT * FROM r1");
      // ok, shed, or connection-torn-down are all acceptable during a
      // drain; hangs and crashes are not.
      if (r.ok()) {
        ++answered;
      } else if (!r.status().IsRetryable() &&
                 r.status().code() != StatusCode::kUnavailable) {
        break;
      } else if (r.status().code() == StatusCode::kUnavailable) {
        break;  // socket closed by the drain
      }
    }
  });
  // Let some traffic through, then drain concurrently with the client.
  while (answered.load() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  stop.store(true);
  client_thread.join();
  EXPECT_GE(answered.load(), 5);
}

}  // namespace
}  // namespace gsopt::server
