// Deterministic parser/binder fuzzing: the SQL frontend must return a
// Status for every input -- garbage bytes, shuffled tokens, or mutated
// valid queries -- and never crash, hang, or abort. Seeds are fixed, so a
// failure reproduces exactly; run under ASan/UBSan (see README) to catch
// memory errors the Status discipline would otherwise mask.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "relational/datagen.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace gsopt {
namespace {

Catalog FuzzCatalog() {
  Catalog cat;
  Rng rng(1234);
  RandomRelationOptions opt;
  opt.num_rows = 4;
  opt.domain = 3;
  AddRandomTables(4, opt, &rng, &cat);  // r1..r4 with columns a, b, c
  return cat;
}

// Valid seed corpus covering the grammar: joins, outer joins, aggregates,
// HAVING, derived tables, constants, string literals, IS NULL.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> kCorpus = {
      "SELECT r1.a FROM r1",
      "SELECT * FROM r1",
      "SELECT r1.a, r1.b FROM r1 WHERE r1.a = 3",
      "SELECT r1.a FROM r1 WHERE r1.a <= 3 AND r1.b <> 'x'",
      "SELECT r1.a, r2.b FROM r1, r2 WHERE r1.a = r2.a AND r1.b >= 1",
      "SELECT r1.a FROM r1 JOIN r2 ON r1.a = r2.a",
      "SELECT * FROM r1 LEFT OUTER JOIN r2 ON r1.a = r2.a "
      "FULL JOIN r3 ON r2.b = r3.b AND r1.c = r3.c",
      "SELECT r1.a, r2.b, r3.c FROM r1 LEFT JOIN r2 ON r1.a = r2.a "
      "LEFT JOIN r3 ON r2.b = r3.b AND r1.c = r3.c JOIN r4 ON r4.a = r1.a",
      "SELECT r1.a, COUNT(r1.b) AS c, SUM(r1.c) AS s FROM r1 "
      "GROUP BY r1.a HAVING COUNT(r1.b) > 2",
      "SELECT r1.a, COUNT(DISTINCT r1.b) AS c FROM r1 GROUP BY r1.a",
      "SELECT v.c FROM (SELECT r1.a, COUNT(r1.b) AS c FROM r1 "
      "GROUP BY r1.a) AS v",
      "SELECT r1.a, r1.b FROM r1 LEFT JOIN "
      "(SELECT r2.a, COUNT(r2.b) AS cnt FROM r2 GROUP BY r2.a) AS v "
      "ON r1.a = v.a",
      "SELECT r1.a FROM r1 WHERE r1.b IS NULL",
      "SELECT r1.a FROM r1 WHERE r1.b IS NOT NULL AND r1.a < 2",
      "SELECT r1.a FROM r1 RIGHT JOIN r2 ON r1.a = r2.a WHERE r2.c = 0",
      "SELECT MIN(r1.a) AS lo, MAX(r1.b) AS hi, AVG(r1.c) AS m FROM r1",
  };
  return kCorpus;
}

// Never crashes: every outcome -- ok or any error code -- is acceptable.
void Probe(const std::string& text, const Catalog& cat) {
  auto toks = sql::Lex(text);
  (void)toks;
  auto parsed = sql::Parse(text);
  (void)parsed;
  auto bound = sql::ParseAndBind(text, cat);
  if (bound.ok()) {
    // A successfully bound tree must at least print.
    EXPECT_FALSE((*bound)->ToString().empty());
  }
}

TEST(ParserFuzzTest, RandomByteStrings) {
  Catalog cat = FuzzCatalog();
  Rng rng(0xF00DF00D);
  for (int iter = 0; iter < 4000; ++iter) {
    int len = static_cast<int>(rng.Uniform(0, 120));
    std::string s;
    s.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      if (rng.Bernoulli(0.85)) {
        // Mostly printable ASCII -- deeper grammar penetration.
        s.push_back(static_cast<char>(rng.Uniform(32, 126)));
      } else {
        // Occasionally arbitrary bytes incl. NUL and high-bit.
        s.push_back(static_cast<char>(rng.Uniform(0, 255)));
      }
    }
    Probe(s, cat);
  }
}

TEST(ParserFuzzTest, ShuffledTokensOfValidQueries) {
  Catalog cat = FuzzCatalog();
  Rng rng(0xBADC0DE);
  const auto& corpus = Corpus();
  for (int iter = 0; iter < 3000; ++iter) {
    const std::string& base =
        corpus[static_cast<size_t>(rng.Uniform(0, corpus.size() - 1))];
    // Whitespace-split token list, Fisher-Yates shuffled.
    std::vector<std::string> words;
    std::string w;
    for (char c : base) {
      if (c == ' ') {
        if (!w.empty()) words.push_back(w);
        w.clear();
      } else {
        w.push_back(c);
      }
    }
    if (!w.empty()) words.push_back(w);
    for (size_t i = words.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap(words[i - 1], words[j]);
    }
    std::string s;
    for (size_t i = 0; i < words.size(); ++i) {
      if (i) s.push_back(' ');
      s += words[i];
    }
    Probe(s, cat);
  }
}

TEST(ParserFuzzTest, MutatedValidQueries) {
  Catalog cat = FuzzCatalog();
  Rng rng(0x5EED5EED);
  const auto& corpus = Corpus();
  for (int iter = 0; iter < 5000; ++iter) {
    std::string s =
        corpus[static_cast<size_t>(rng.Uniform(0, corpus.size() - 1))];
    int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations && !s.empty(); ++m) {
      size_t pos =
          static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(s.size()) - 1));
      switch (rng.Uniform(0, 2)) {
        case 0:  // replace
          s[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
        case 1:  // delete
          s.erase(pos, 1);
          break;
        default:  // insert
          s.insert(pos, 1, static_cast<char>(rng.Uniform(32, 126)));
          break;
      }
    }
    Probe(s, cat);
  }
}

TEST(ParserFuzzTest, CorpusItselfBinds) {
  // Guard against the corpus rotting: every seed query must parse and
  // bind, or the mutation tests lose their bite.
  Catalog cat = FuzzCatalog();
  for (const std::string& q : Corpus()) {
    auto bound = sql::ParseAndBind(q, cat);
    EXPECT_TRUE(bound.ok()) << q << " -> " << bound.status().ToString();
  }
}

}  // namespace
}  // namespace gsopt
