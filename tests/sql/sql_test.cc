// SQL frontend: lexer, parser, binder, and end-to-end optimize+execute of
// the paper's SQL-level scenarios.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "exec/sort.h"
#include "relational/datagen.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace gsopt {
namespace {

using sql::Lex;
using sql::Parse;
using sql::ParseAndBind;

Value I(int64_t v) { return Value::Int(v); }

Catalog MakeCatalog() {
  Catalog cat;
  Rng rng(77);
  RandomRelationOptions opt;
  opt.num_rows = 12;
  opt.domain = 4;
  opt.null_fraction = 0.1;
  AddRandomTables(4, opt, &rng, &cat);
  return cat;
}

TEST(LexerTest, TokenizesKeywordsIdentsAndOperators) {
  auto toks = Lex("SELECT r1.a FROM r1 WHERE r1.a <= 3 AND r1.b <> 'x'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, sql::TokenKind::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].kind, sql::TokenKind::kIdent);
  bool saw_le = false, saw_ne = false, saw_str = false;
  for (const auto& t : *toks) {
    if (t.kind == sql::TokenKind::kPunct && t.text == "<=") saw_le = true;
    if (t.kind == sql::TokenKind::kPunct && t.text == "<>") saw_ne = true;
    if (t.kind == sql::TokenKind::kString && t.text == "x") saw_str = true;
  }
  EXPECT_TRUE(saw_le);
  EXPECT_TRUE(saw_ne);
  EXPECT_TRUE(saw_str);
}

TEST(LexerTest, NumbersIntegerAndDecimal) {
  auto toks = Lex("12 3.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].is_integer);
  EXPECT_FALSE((*toks)[1].is_integer);
  EXPECT_DOUBLE_EQ((*toks)[1].number, 3.5);
}

TEST(LexerTest, RejectsBadCharacters) {
  EXPECT_FALSE(Lex("SELECT ;").ok());
  EXPECT_FALSE(Lex("SELECT 'oops").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto q = Parse("SELECT r1.a, r1.b FROM r1 WHERE r1.a = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->where.size(), 1u);
}

TEST(ParserTest, JoinChainWithOuterJoins) {
  auto q = Parse(
      "SELECT * FROM r1 LEFT OUTER JOIN r2 ON r1.a = r2.a "
      "FULL JOIN r3 ON r2.b = r3.b AND r1.c = r3.c");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0]->kind, sql::SqlTableRef::Kind::kJoin);
  EXPECT_EQ(q->from[0]->join_kind, sql::SqlTableRef::JoinKind::kFull);
  EXPECT_EQ(q->from[0]->on.size(), 2u);
}

TEST(ParserTest, GroupByHavingAggregates) {
  auto q = Parse(
      "SELECT r1.a, COUNT(r1.b) AS c, SUM(r1.c) AS s FROM r1 "
      "GROUP BY r1.a HAVING COUNT(r1.b) > 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->having.size(), 1u);
}

TEST(ParserTest, SubqueryWithAlias) {
  auto q = Parse(
      "SELECT v.c FROM (SELECT r1.a, COUNT(r1.b) AS c FROM r1 "
      "GROUP BY r1.a) AS v");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->from[0]->kind, sql::SqlTableRef::Kind::kSubquery);
  EXPECT_EQ(q->from[0]->alias, "v");
}

TEST(ParserTest, ErrorsOnMalformedInput) {
  EXPECT_FALSE(Parse("FROM r1").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM r1 WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM r1 extra").ok());
  EXPECT_FALSE(Parse("SELECT a FROM (SELECT b FROM r2)").ok());  // no alias
}

TEST(BinderTest, SimpleScanFilterProject) {
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind("SELECT r1.a, r1.b FROM r1 WHERE r1.a >= 1", cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema().size(), 2);
  for (const Tuple& t : rel->rows()) {
    EXPECT_FALSE(t.values[0].is_null());
    EXPECT_GE(t.values[0].AsInt(), 1);
  }
}

TEST(BinderTest, UnqualifiedColumnsResolveWhenUnique) {
  Catalog cat;
  GSOPT_CHECK(cat.CreateTable("t", {"x", "y"}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(1), I(2)}).ok());
  auto tree = ParseAndBind("SELECT x FROM t WHERE y = 2", cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 1);
}

TEST(BinderTest, AmbiguousAndUnknownColumnsRejected) {
  Catalog cat = MakeCatalog();
  EXPECT_FALSE(
      ParseAndBind("SELECT a FROM r1 JOIN r2 ON r1.a = r2.a", cat).ok());
  EXPECT_FALSE(ParseAndBind("SELECT r1.zzz FROM r1", cat).ok());
  EXPECT_FALSE(ParseAndBind("SELECT r1.a FROM nosuch", cat).ok());
}

TEST(BinderTest, CommaJoinDistributesWherePredicates) {
  Catalog cat = MakeCatalog();
  auto t1 = ParseAndBind(
      "SELECT r1.a, r2.b FROM r1, r2 WHERE r1.a = r2.a AND r1.b >= 1", cat);
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  auto t2 = ParseAndBind(
      "SELECT r1.a, r2.b FROM r1 JOIN r2 ON r1.a = r2.a WHERE r1.b >= 1",
      cat);
  ASSERT_TRUE(t2.ok());
  auto r1 = Execute(*t1, cat);
  auto r2 = Execute(*t2, cat);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(Relation::BagEquals(*r1, *r2));
}

TEST(BinderTest, GroupByCountMatchesManualAlgebra) {
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind(
      "SELECT r1.a, COUNT(r1.b) AS c FROM r1 GROUP BY r1.a", cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok());

  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "a"}};
  exec::AggSpec cnt;
  cnt.func = exec::AggFunc::kCount;
  cnt.input = Scalar::Column("r1", "b");
  cnt.out_rel = "q";
  cnt.out_name = "c";
  spec.aggs = {cnt};
  auto manual = Execute(Node::GroupBy(Node::Leaf("r1"), spec), cat);
  ASSERT_TRUE(manual.ok());
  EXPECT_EQ(rel->NumRows(), manual->NumRows());
}

TEST(BinderTest, HavingFiltersGroups) {
  Catalog cat;
  GSOPT_CHECK(cat.CreateTable("t", {"k", "v"}).ok());
  for (int i = 0; i < 5; ++i) {
    GSOPT_CHECK(cat.Insert("t", {I(i < 3 ? 1 : 2), I(i)}).ok());
  }
  auto tree = ParseAndBind(
      "SELECT t.k, COUNT(t.v) AS c FROM t GROUP BY t.k HAVING "
      "COUNT(t.v) >= 3",
      cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel->NumRows(), 1);
  EXPECT_EQ(rel->row(0).values[0].AsInt(), 1);
  EXPECT_EQ(rel->row(0).values[1].AsInt(), 3);
}

TEST(BinderTest, ViewMergesAndOuterPredicateOnAggregate) {
  // The Example 1.1 pattern written in SQL: an aggregation view on the
  // null-supplying side of a LOJ with an ON predicate over the COUNT.
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind(
      "SELECT r1.a, r1.b FROM r1 LEFT JOIN "
      "(SELECT r2.a, COUNT(r2.b) AS cnt FROM r2 GROUP BY r2.a) AS v "
      "ON r1.a = v.a AND r1.b < 2 * v.cnt",
      cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto ref = Execute(*tree, cat);
  ASSERT_TRUE(ref.ok());

  // And it must be optimizable with all plans equivalent.
  QueryOptimizer opt(cat);
  OptimizeOptions oo;
  oo.prune = false;
  auto plans = opt.EnumerateFullPlans(*tree, oo);
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  EXPECT_GE(plans->size(), 1u);
  for (const PlanInfo& p : *plans) {
    auto got = Execute(p.expr, cat);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(Relation::BagEquals(*ref, *got)) << p.expr->ToString();
  }
}

TEST(BinderTest, FullSqlQueryOptimizesEquivalently) {
  Catalog cat = MakeCatalog();
  const char* kSql =
      "SELECT r1.a, r2.b, r3.c FROM "
      "r1 LEFT JOIN r2 ON r1.a = r2.a "
      "LEFT JOIN r3 ON r2.b = r3.b AND r1.c = r3.c "
      "JOIN r4 ON r4.a = r1.a";
  auto tree = ParseAndBind(kSql, cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto ref = Execute(*tree, cat);
  ASSERT_TRUE(ref.ok());
  QueryOptimizer opt(cat);
  OptimizeOptions oo;
  oo.prune = false;
  auto plans = opt.EnumerateFullPlans(*tree, oo);
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  EXPECT_GT(plans->size(), 3u);
  for (const PlanInfo& p : *plans) {
    auto got = Execute(p.expr, cat);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(Relation::BagEquals(*ref, *got)) << p.expr->ToString();
  }
}

TEST(ParserTest, OrderByDirectionsAndErrors) {
  auto q = Parse("SELECT r1.a FROM r1 ORDER BY r1.a DESC, r1.b ASC, r1.c");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->order_by.size(), 3u);
  EXPECT_TRUE(q->order_by[0].desc);
  EXPECT_FALSE(q->order_by[1].desc);
  EXPECT_FALSE(q->order_by[2].desc);
  // Only plain (optionally qualified) column keys are supported.
  EXPECT_FALSE(Parse("SELECT r1.a FROM r1 ORDER BY 1").ok());
  EXPECT_FALSE(Parse("SELECT r1.a FROM r1 ORDER BY r1.a + 1").ok());
}

TEST(BinderTest, OrderByMultiKeyExecutesSorted) {
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind(
      "SELECT r1.a, r1.b FROM r1 JOIN r2 ON r1.a = r2.a "
      "ORDER BY r1.a DESC, r1.b",
      cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  exec::SortSpec spec{{Attribute{"r1", "a"}, /*desc=*/true},
                      {Attribute{"r1", "b"}, /*desc=*/false}};
  EXPECT_TRUE(exec::CheckSorted(*rel, spec).ok());

  // Same bag as the unordered query: ORDER BY is an enforcer, not a filter.
  auto unordered = Execute(
      *ParseAndBind("SELECT r1.a, r1.b FROM r1 JOIN r2 ON r1.a = r2.a", cat),
      cat);
  ASSERT_TRUE(unordered.ok());
  EXPECT_TRUE(Relation::BagEquals(*unordered, *rel));
}

TEST(BinderTest, OrderByResolvesSelectAlias) {
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind("SELECT r1.a AS x FROM r1 ORDER BY x DESC", cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  exec::SortSpec spec{{Attribute{"q", "x"}, /*desc=*/true}};
  EXPECT_TRUE(exec::CheckSorted(*rel, spec).ok());
}

TEST(BinderTest, OrderByAggregateAliasSortsGroups) {
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind(
      "SELECT r2.a, COUNT(r2.b) AS cnt FROM r2 GROUP BY r2.a "
      "ORDER BY cnt DESC, a",
      cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  exec::SortSpec spec{{Attribute{"q", "cnt"}, /*desc=*/true},
                      {Attribute{"q", "a"}, /*desc=*/false}};
  EXPECT_TRUE(exec::CheckSorted(*rel, spec).ok());
}

TEST(BinderTest, OrderByUnselectedColumnSortsBelowProjection) {
  // The sort key need not appear in the select list for non-aggregate
  // queries: the enforcer sits below the final projection.
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind("SELECT r1.b FROM r1 ORDER BY r1.a", cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE(Execute(*tree, cat).ok());
}

TEST(BinderTest, OrderByRejectedInsideSubquery) {
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind(
      "SELECT v.a FROM (SELECT r1.a FROM r1 ORDER BY r1.a) AS v", cat);
  ASSERT_FALSE(tree.ok());
  EXPECT_NE(tree.status().message().find("outermost"), std::string::npos);
}

TEST(BinderTest, StarSelect) {
  Catalog cat = MakeCatalog();
  auto tree = ParseAndBind("SELECT * FROM r1 JOIN r2 ON r1.a = r2.a", cat);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto rel = Execute(*tree, cat);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->schema().size(), 6);
}

}  // namespace
}  // namespace gsopt
