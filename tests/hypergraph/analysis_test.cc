// Unit tests for the hypergraph analysis primitives on hand-built graphs:
// path reachability, preserved sides with null-region blocking, away-side
// computation, operator-above relation, units/qualifiers.
#include "hypergraph/analysis.h"

#include <gtest/gtest.h>

#include "hypergraph/hypergraph.h"

namespace gsopt {
namespace {

Predicate P2(const std::string& a, const std::string& b) {
  return Predicate(MakeAtom(a, "x", CmpOp::kEq, b, "x"));
}

// r1 ->A r2 ->B r3 (simple chain of LOJs).
struct Chain3 {
  Hypergraph h;
  int r1, r2, r3, A, B;
  Chain3() {
    r1 = h.AddRelation("r1");
    r2 = h.AddRelation("r2");
    r3 = h.AddRelation("r3");
    // Tree: r1 LOJ_A (r2 LOJ_B r3); operand subtrees passed explicitly.
    B = *h.AddEdge(EdgeKind::kDirected, RelSet::Single(r2),
                   RelSet::Single(r3), P2("r2", "r3"));
    A = *h.AddEdge(EdgeKind::kDirected, RelSet::Single(r1),
                   RelSet::Single(r2), P2("r1", "r2"), RelSet::Single(r1),
                   RelSet({r2, r3}));
  }
};

TEST(AnalysisTest, PathExistsRespectsBans) {
  Chain3 c;
  HypergraphAnalysis an(c.h);
  EXPECT_TRUE(an.PathExists(c.r1, RelSet::Single(c.r3), RelSet()));
  EXPECT_FALSE(
      an.PathExists(c.r1, RelSet::Single(c.r3), RelSet::Single(c.B)));
  EXPECT_TRUE(an.PathExists(c.r2, RelSet::Single(c.r2), RelSet()));
}

TEST(AnalysisTest, ChainPreservedSets) {
  Chain3 c;
  HypergraphAnalysis an(c.h);
  // pres(A) = {r1}: r2, r3 are on the null side.
  EXPECT_EQ(an.Pres(c.A), RelSet::Single(c.r1));
  // pres(B) = {r1, r2}: r1 attaches through A, whose predicate does not
  // touch B's null region {r3}.
  EXPECT_EQ(an.Pres(c.B), RelSet({c.r1, c.r2}));
  EXPECT_TRUE(an.Conf(c.A).empty());
  EXPECT_TRUE(an.Conf(c.B).empty());
}

TEST(AnalysisTest, NullRegionBlocksRiding) {
  // r1 ->A r3;  B = <{r1,r2-style}> : edge whose predicate touches A's
  // null side blocks r2 from riding with r1.
  Hypergraph h;
  int r1 = h.AddRelation("r1");
  int r2 = h.AddRelation("r2");
  int r3 = h.AddRelation("r3");
  int A = *h.AddEdge(EdgeKind::kDirected, RelSet::Single(r1),
                     RelSet::Single(r3), P2("r1", "r3"));
  // B connects {r1,r3} with r2 and its predicate references r3 (A's null
  // region) -- r2 must NOT be in pres(A).
  Predicate pb({MakeAtom("r2", "x", CmpOp::kEq, "r1", "x"),
                MakeAtom("r2", "y", CmpOp::kLe, "r3", "y")});
  RelSet v1({r1, r3});
  int B = *h.AddEdge(EdgeKind::kDirected, v1, RelSet::Single(r2), pb);
  (void)B;
  HypergraphAnalysis an(h);
  EXPECT_EQ(an.Pres(A), RelSet::Single(r1));
}

TEST(AnalysisTest, RidingAllowedWhenEdgeAvoidsNullRegion) {
  // Same shape but B's predicate only touches r1: r2 rides with r1.
  Hypergraph h;
  int r1 = h.AddRelation("r1");
  int r2 = h.AddRelation("r2");
  int r3 = h.AddRelation("r3");
  int A = *h.AddEdge(EdgeKind::kDirected, RelSet::Single(r1),
                     RelSet::Single(r3), P2("r1", "r3"));
  // Tree: (r1 LOJ_A r3) LOJ_B r2 -- B's left operand subtree is {r1,r3}.
  int B = *h.AddEdge(EdgeKind::kDirected, RelSet({r1}), RelSet::Single(r2),
                     P2("r1", "r2"), RelSet({r1, r3}), RelSet::Single(r2));
  (void)B;
  HypergraphAnalysis an(h);
  EXPECT_EQ(an.Pres(A), RelSet({r1, r2}));
}

TEST(AnalysisTest, PresAwayPicksOppositeSide) {
  // r1 <->F r2 ->B r3: away from B, F preserves {r1}.
  Hypergraph h;
  int r1 = h.AddRelation("r1");
  int r2 = h.AddRelation("r2");
  int r3 = h.AddRelation("r3");
  int B = *h.AddEdge(EdgeKind::kDirected, RelSet::Single(r2),
                     RelSet::Single(r3), P2("r2", "r3"));
  // Tree: r1 FOJ_F (r2 LOJ_B r3).
  int F = *h.AddEdge(EdgeKind::kBidirected, RelSet::Single(r1),
                     RelSet::Single(r2), P2("r1", "r2"), RelSet::Single(r1),
                     RelSet({r2, r3}));
  HypergraphAnalysis an(h);
  EXPECT_EQ(an.PresAway(F, B), RelSet::Single(r1));
  // For a directed edge, PresAway == Pres regardless of the away edge.
  EXPECT_EQ(an.PresAway(B, F), an.Pres(B));
}

TEST(AnalysisTest, OperatorAboveRelation) {
  Chain3 c;
  HypergraphAnalysis an(c.h);
  // A's null side region contains B entirely: A's operator is above B's.
  EXPECT_TRUE(an.OperatorAbove(c.A, c.B));
  EXPECT_FALSE(an.OperatorAbove(c.B, c.A));
  EXPECT_FALSE(an.OperatorAbove(c.A, c.A));
}

TEST(AnalysisTest, ConfFindsFojThroughJoins) {
  // join J(r1-r2), FOJ F(r2-r3): conf(J) = {F}.
  Hypergraph h;
  int r1 = h.AddRelation("r1");
  int r2 = h.AddRelation("r2");
  int r3 = h.AddRelation("r3");
  int J = *h.AddEdge(EdgeKind::kUndirected, RelSet::Single(r1),
                     RelSet::Single(r2), P2("r1", "r2"));
  // Tree: (r1 J r2) FOJ_F r3.
  int F = *h.AddEdge(EdgeKind::kBidirected, RelSet::Single(r2),
                     RelSet::Single(r3), P2("r2", "r3"), RelSet({r1, r2}),
                     RelSet::Single(r3));
  HypergraphAnalysis an(h);
  EXPECT_EQ(an.Conf(J), std::vector<int>{F});
  EXPECT_TRUE(an.Ccoj(J).empty());
  // Deferring a conjunct of J: compensate with F's away side {r3}... and
  // the side containing J is {r1,r2}: groups are the two F sides' away
  // parts -- here PresAway(F, J) = {r3}.
  std::vector<RelSet> groups = an.DeferredGroups(J);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], RelSet::Single(r3));
}

TEST(HypergraphUnitsTest, QualifierLookupAndPreservedExpansion) {
  Hypergraph h;
  int u = h.AddUnit("#unit0", {"r1", "V1"});
  int r2 = h.AddRelation("r2");
  EXPECT_EQ(h.RelId("r1"), u);
  EXPECT_EQ(h.RelId("V1"), u);
  EXPECT_EQ(h.RelId("#unit0"), u);
  EXPECT_EQ(h.RelId("r2"), r2);
  Predicate p(MakeAtom("V1", "c", CmpOp::kEq, "r2", "x"));
  int e = *h.AddEdge(EdgeKind::kDirected, RelSet::Single(u),
                     RelSet::Single(r2), p);
  (void)e;
  HypergraphAnalysis an(h);
  auto groups = an.ToPreservedGroups({RelSet::Single(u)});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].count("r1"), 1u);
  EXPECT_EQ(groups[0].count("V1"), 1u);
}

TEST(HypergraphTest, AddEdgeValidation) {
  Hypergraph h;
  int r1 = h.AddRelation("r1");
  int r2 = h.AddRelation("r2");
  // Empty hypernode.
  EXPECT_FALSE(
      h.AddEdge(EdgeKind::kUndirected, RelSet(), RelSet::Single(r2),
                P2("r1", "r2"))
          .ok());
  // Overlapping hypernodes.
  EXPECT_FALSE(h.AddEdge(EdgeKind::kUndirected, RelSet({r1, r2}),
                         RelSet::Single(r2), P2("r1", "r2"))
                   .ok());
  // Atom escaping the endpoints.
  h.AddRelation("r3");
  EXPECT_FALSE(h.AddEdge(EdgeKind::kUndirected, RelSet::Single(r1),
                         RelSet::Single(r2), P2("r1", "r3"))
                   .ok());
  // Unknown relation in predicate.
  EXPECT_FALSE(h.AddEdge(EdgeKind::kUndirected, RelSet::Single(r1),
                         RelSet::Single(r2), P2("r1", "zz"))
                   .ok());
}

TEST(HypergraphTest, TruePredicateEdgeGetsTautologyAtom) {
  Hypergraph h;
  int r1 = h.AddRelation("r1");
  int r2 = h.AddRelation("r2");
  auto e = h.AddEdge(EdgeKind::kDirected, RelSet::Single(r1),
                     RelSet::Single(r2), Predicate::True());
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(h.edge(*e).atoms.size(), 1u);
  EXPECT_EQ(h.edge(*e).atoms[0].span, RelSet({r1, r2}));
  EXPECT_TRUE(h.Connected(RelSet({r1, r2})));
}

}  // namespace
}  // namespace gsopt
