// Reproduces Figure 1 (the hypergraph of query Q4, Example 3.2) and the
// paper's preserved-set / conflict-set computations on Q2, Q4, Q5 and Q6.
#include <gtest/gtest.h>

#include "algebra/node.h"
#include "hypergraph/analysis.h"
#include "hypergraph/build.h"

namespace gsopt {
namespace {

Predicate P(const std::string& r1, const std::string& c1,
            const std::string& r2, const std::string& c2) {
  return Predicate(MakeAtom(r1, c1, CmpOp::kEq, r2, c2));
}

// Q4 = r1 ->p12 (r2 ->p24^p25 ((r4 JOIN_p45 r5) JOIN_p35 r3))
NodePtr BuildQ4() {
  Predicate p24_25 = Predicate::And(P("r2", "a", "r4", "a"),
                                    P("r2", "b", "r5", "b"));
  NodePtr r45 = Node::Join(Node::Leaf("r4"), Node::Leaf("r5"),
                           P("r4", "c", "r5", "c"));
  NodePtr r453 = Node::Join(r45, Node::Leaf("r3"), P("r5", "a", "r3", "a"));
  NodePtr right = Node::LeftOuterJoin(Node::Leaf("r2"), r453, p24_25);
  return Node::LeftOuterJoin(Node::Leaf("r1"), right, P("r1", "a", "r2", "a"));
}

// Id of the Q6 FOJ edge (endpoints r1, r2, r4).
int h1Of(const Hypergraph& h) {
  for (const Hyperedge& e : h.edges()) {
    if (e.kind == EdgeKind::kBidirected) return e.id;
  }
  return -1;
}

int EdgeByRels(const Hypergraph& h, RelSet endpoints) {
  for (const Hyperedge& e : h.edges()) {
    if (e.Endpoints() == endpoints) return e.id;
  }
  return -1;
}

RelSet Rels(const Hypergraph& h, std::initializer_list<const char*> names) {
  RelSet s;
  for (const char* n : names) s.Add(h.RelId(n));
  return s;
}

TEST(Fig1Test, HypergraphStructureMatchesPaper) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok()) << hor.status().ToString();
  const Hypergraph& h = *hor;

  // H = <{r1..r5}, {h1..h4}>
  EXPECT_EQ(h.NumRelations(), 5);
  EXPECT_EQ(h.NumEdges(), 4);

  // h1 = <{r1},{r2}> directed
  int h1 = EdgeByRels(h, Rels(h, {"r1", "r2"}));
  ASSERT_GE(h1, 0);
  EXPECT_EQ(h.edge(h1).kind, EdgeKind::kDirected);
  EXPECT_EQ(h.edge(h1).v1, Rels(h, {"r1"}));
  EXPECT_EQ(h.edge(h1).v2, Rels(h, {"r2"}));

  // h2 = <{r2},{r4,r5}> directed (the paper calls this out explicitly).
  int h2 = EdgeByRels(h, Rels(h, {"r2", "r4", "r5"}));
  ASSERT_GE(h2, 0);
  EXPECT_EQ(h.edge(h2).kind, EdgeKind::kDirected);
  EXPECT_EQ(h.edge(h2).v1, Rels(h, {"r2"}));
  EXPECT_EQ(h.edge(h2).v2, Rels(h, {"r4", "r5"}));
  EXPECT_TRUE(h.edge(h2).IsComplex());
  EXPECT_EQ(h.edge(h2).atoms.size(), 2u);

  // h3 = join edge between r5 and r3; h4 = join edge r4-r5.
  int h3 = EdgeByRels(h, Rels(h, {"r5", "r3"}));
  int h4 = EdgeByRels(h, Rels(h, {"r4", "r5"}));
  ASSERT_GE(h3, 0);
  ASSERT_GE(h4, 0);
  EXPECT_EQ(h.edge(h3).kind, EdgeKind::kUndirected);
  EXPECT_EQ(h.edge(h4).kind, EdgeKind::kUndirected);
  EXPECT_TRUE(h.edge(h3).IsSimpleEdge());

  // "Note that this hypergraph has no cycles."
  EXPECT_TRUE(h.IsAcyclic());
}

TEST(Fig1Test, PreservedSetOfH2IsR1R2) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);
  int h2 = EdgeByRels(h, Rels(h, {"r2", "r4", "r5"}));
  // "For example, preserved set for hyperedge h2 is {r1, r2} in query Q4."
  EXPECT_EQ(an.Pres(h2), Rels(h, {"r1", "r2"}));
}

TEST(Fig1Test, DeferredGroupsForH2) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);
  int h2 = EdgeByRels(h, Rels(h, {"r2", "r4", "r5"}));
  // Q4 = sigma*_{p24}[r1r2](Q4^1): exactly one preserved group {r1,r2}.
  EXPECT_TRUE(an.Conf(h2).empty());
  std::vector<RelSet> groups = an.DeferredGroups(h2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], Rels(h, {"r1", "r2"}));
}

TEST(Fig1Test, CcojOfJoinEdges) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);
  int h2 = EdgeByRels(h, Rels(h, {"r2", "r4", "r5"}));
  int h3 = EdgeByRels(h, Rels(h, {"r5", "r3"}));
  int h4 = EdgeByRels(h, Rels(h, {"r4", "r5"}));
  // Join region of h4 is {r3,r4,r5}; h2's null-supplying hypernode touches
  // it, so h2 is the closest conflicting outer join of both join edges.
  EXPECT_EQ(an.Ccoj(h4), std::vector<int>{h2});
  EXPECT_EQ(an.Ccoj(h3), std::vector<int>{h2});
  // conf(join) = {ccoj} union conf(ccoj); conf(h2) has no full outer joins.
  EXPECT_EQ(an.Conf(h4), std::vector<int>{h2});
}

// Q2-shape: (r1 ->p12 r2) ->p13^p23 r3 (the motivating unnesting query).
TEST(Q2Test, DeferredGroupIsCompositeR1R2) {
  Predicate p13_23 = Predicate::And(P("r1", "f", "r3", "f"),
                                    P("r2", "e", "r3", "e"));
  NodePtr q = Node::LeftOuterJoin(
      Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                          P("r1", "c", "r2", "c")),
      Node::Leaf("r3"), p13_23);
  auto hor = BuildHypergraph(q);
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);
  int hc = EdgeByRels(h, Rels(h, {"r1", "r2", "r3"}));
  ASSERT_GE(hc, 0);
  EXPECT_EQ(h.edge(hc).kind, EdgeKind::kDirected);
  EXPECT_EQ(h.edge(hc).v1, Rels(h, {"r1", "r2"}));
  std::vector<RelSet> groups = an.DeferredGroups(hc);
  // sigma*_{p13}[r1 r2](...): one composite group.
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], Rels(h, {"r1", "r2"}));
}

// Q6 = r1 <->p12^p14 (r2 ->p23^p24 (r3 ->p34 r4))
struct Q6Fixture {
  NodePtr query;
  Q6Fixture() {
    Predicate p12_14 = Predicate::And(P("r1", "a", "r2", "a"),
                                      P("r1", "d", "r4", "d"));
    Predicate p23_24 = Predicate::And(P("r2", "b", "r3", "b"),
                                      P("r2", "c", "r4", "c"));
    NodePtr r34 = Node::LeftOuterJoin(Node::Leaf("r3"), Node::Leaf("r4"),
                                      P("r3", "d", "r4", "e"));
    NodePtr r234 = Node::LeftOuterJoin(Node::Leaf("r2"), r34, p23_24);
    query = Node::FullOuterJoin(Node::Leaf("r1"), r234, p12_14);
  }
};

TEST(Q6Test, BidirectedBreakGroupsMatchPaper) {
  Q6Fixture f;
  auto hor = BuildHypergraph(f.query);
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);
  int h1 = EdgeByRels(h, Rels(h, {"r1", "r2", "r4"}));
  ASSERT_GE(h1, 0);
  EXPECT_EQ(h.edge(h1).kind, EdgeKind::kBidirected);
  // Breaking P1 = p12^p14: sigma*[{r1}, {r2,r3,r4}].
  EXPECT_EQ(an.Pres1(h1), Rels(h, {"r1"}));
  EXPECT_EQ(an.Pres2(h1), Rels(h, {"r2", "r3", "r4"}));
  std::vector<RelSet> groups = an.DeferredGroups(h1);
  ASSERT_EQ(groups.size(), 2u);
}

TEST(Q6Test, DirectedBreakGroupsMatchPaper) {
  Q6Fixture f;
  auto hor = BuildHypergraph(f.query);
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);
  int h2 = EdgeByRels(h, Rels(h, {"r2", "r3", "r4"}));
  ASSERT_GE(h2, 0);
  EXPECT_EQ(h.edge(h2).kind, EdgeKind::kDirected);
  // pres(h2): r1 sits behind the FOJ h1, whose predicate touches r4 in
  // h2's null region -- padded tuples cannot match h1, so r1 does not ride
  // with r2; it is covered by the separate conflict group instead.
  EXPECT_EQ(an.Pres(h2), Rels(h, {"r2"}));
  EXPECT_EQ(an.Conf(h2), std::vector<int>{h1Of(h)});
  // Breaking P2 = p23^p24: the paper writes sigma*_{p23}[r1r2]; tracing the
  // identity semantics shows the sound reading is the two groups {r1},{r2}
  // (the composite {r1,r2} resurrects (r1,r2,NULL,NULL) tuples that the
  // original FOJ, whose kept conjunct p14 goes UNKNOWN on padded r4, splits
  // into (r1,-) and (-,r2)). The equivalence property suite pins this down.
  std::vector<RelSet> groups = an.DeferredGroups(h2);
  ASSERT_EQ(groups.size(), 2u);
  RelSet ga = groups[0].Count() <= groups[1].Count() ? groups[0] : groups[1];
  RelSet gb = groups[0].Count() <= groups[1].Count() ? groups[1] : groups[0];
  EXPECT_EQ(ga, Rels(h, {"r1"}));
  EXPECT_EQ(gb, Rels(h, {"r2"}));
}

// Q5 = (r1 <->p12^p13 (r2 ->p23 r3)) ->p24 (r4 ->p45^p46 (r5 JOIN_p56 r6))
struct Q5Fixture {
  NodePtr query;
  Q5Fixture() {
    Predicate p12_13 = Predicate::And(P("r1", "a", "r2", "a"),
                                      P("r1", "b", "r3", "b"));
    Predicate p45_46 = Predicate::And(P("r4", "a", "r5", "a"),
                                      P("r4", "b", "r6", "b"));
    NodePtr left = Node::FullOuterJoin(
        Node::Leaf("r1"),
        Node::LeftOuterJoin(Node::Leaf("r2"), Node::Leaf("r3"),
                            P("r2", "c", "r3", "c")),
        p12_13);
    NodePtr right = Node::LeftOuterJoin(
        Node::Leaf("r4"),
        Node::Join(Node::Leaf("r5"), Node::Leaf("r6"), P("r5", "c", "r6", "c")),
        p45_46);
    query = Node::LeftOuterJoin(left, right, P("r2", "d", "r4", "d"));
  }
};

TEST(Q5Test, BothComplexEdgesGetPaperGroups) {
  Q5Fixture f;
  auto hor = BuildHypergraph(f.query);
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  HypergraphAnalysis an(h);

  // Bidirected h1 = <{r1},{r2,r3}>: groups {r1} and {r2..r6}
  // ("sigma*_{p12}[r1, rj], 2 <= j <= 6").
  int h1 = EdgeByRels(h, Rels(h, {"r1", "r2", "r3"}));
  ASSERT_GE(h1, 0);
  std::vector<RelSet> g1 = an.DeferredGroups(h1);
  ASSERT_EQ(g1.size(), 2u);
  RelSet small = g1[0].Count() < g1[1].Count() ? g1[0] : g1[1];
  RelSet big = g1[0].Count() < g1[1].Count() ? g1[1] : g1[0];
  EXPECT_EQ(small, Rels(h, {"r1"}));
  EXPECT_EQ(big, Rels(h, {"r2", "r3", "r4", "r5", "r6"}));

  // Directed h' = <{r4},{r5,r6}>: the h1-conflict's away-side {r1} is
  // subsumed by pres(h') = {r1..r4}, leaving the paper's single group
  // ("sigma*_{p45}[ri], 1 <= i <= 4").
  int hp = EdgeByRels(h, Rels(h, {"r4", "r5", "r6"}));
  ASSERT_GE(hp, 0);
  std::vector<RelSet> g2 = an.DeferredGroups(hp);
  ASSERT_EQ(g2.size(), 1u);
  EXPECT_EQ(g2[0], Rels(h, {"r1", "r2", "r3", "r4"}));
}

TEST(BuildTest, RejectsNonJoinTrees) {
  NodePtr bad = Node::Select(Node::Leaf("r1"),
                             Predicate(MakeConstAtom("r1", "a", CmpOp::kEq,
                                                     Value::Int(1))));
  EXPECT_FALSE(BuildHypergraph(bad).ok());
}

TEST(BuildTest, RightOuterJoinNormalizesPreservedSide) {
  // r1 ROJ r2 (r2 preserved) must produce a directed edge with v1 = {r2}.
  NodePtr q = Node::RightOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                                   P("r1", "a", "r2", "a"));
  auto hor = BuildHypergraph(q);
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  EXPECT_EQ(h.edge(0).kind, EdgeKind::kDirected);
  EXPECT_EQ(h.edge(0).v1, RelSet::Single(h.RelId("r2")));
}

TEST(HypergraphTest, ConnectivityViaAtomSubEdges) {
  auto hor = BuildHypergraph(BuildQ4());
  ASSERT_TRUE(hor.ok());
  const Hypergraph& h = *hor;
  // {r2, r4} is connected through the p24 atom alone (a sub-edge of h2) --
  // the relaxation Definition 3.2 exploits.
  EXPECT_TRUE(h.Connected(Rels(h, {"r2", "r4"})));
  EXPECT_TRUE(h.Connected(Rels(h, {"r2", "r5"})));
  // {r4, r3} is NOT connected (p35 links r5-r3, p45 links r4-r5).
  EXPECT_FALSE(h.Connected(Rels(h, {"r4", "r3"})));
  EXPECT_TRUE(h.Connected(Rels(h, {"r4", "r5", "r3"})));
  // {r1, r4}: the only predicate touching r1 is p12 (needs r2).
  EXPECT_FALSE(h.Connected(Rels(h, {"r1", "r4"})));
}

}  // namespace
}  // namespace gsopt
