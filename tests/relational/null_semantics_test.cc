// IS [NOT] NULL atoms and the null-intolerance guard (paper footnote 2):
// tolerant predicates must not reorder or drive outer-join simplification.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "algebra/simplify.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "hypergraph/build.h"
#include "relational/datagen.h"
#include "sql/binder.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value N() { return Value::Null(); }

TEST(IsNullAtomTest, EvaluationNeverUnknown) {
  Relation r = MakeRelation("t", {"x"}, {{I(1)}, {N()}});
  Atom is_null = MakeIsNullAtom("t", "x", /*negated=*/false);
  Atom not_null = MakeIsNullAtom("t", "x", /*negated=*/true);
  EXPECT_EQ(is_null.Eval(r.row(0), r.schema()), Tri::kFalse);
  EXPECT_EQ(is_null.Eval(r.row(1), r.schema()), Tri::kTrue);
  EXPECT_EQ(not_null.Eval(r.row(0), r.schema()), Tri::kTrue);
  EXPECT_EQ(not_null.Eval(r.row(1), r.schema()), Tri::kFalse);
}

TEST(IsNullAtomTest, IntoleranceClassification) {
  Atom cmp = MakeAtom("a", "x", CmpOp::kEq, "b", "x");
  Atom is_null = MakeIsNullAtom("a", "x", false);
  Atom not_null = MakeIsNullAtom("a", "x", true);
  EXPECT_TRUE(cmp.IsNullIntolerant());
  EXPECT_FALSE(is_null.IsNullIntolerant());
  EXPECT_TRUE(not_null.IsNullIntolerant());

  Predicate mixed({cmp, is_null});
  EXPECT_FALSE(mixed.IsNullIntolerant());
  // Only the intolerant atom's relations reject nulls.
  auto rejected = mixed.NullRejectedRels();
  EXPECT_EQ(rejected.count("b"), 1u);
  EXPECT_EQ(rejected.size(), 2u);  // a (from cmp), b
}

TEST(IsNullAtomTest, ToStringAndSelect) {
  Relation r = MakeRelation("t", {"x"}, {{I(1)}, {N()}, {I(2)}});
  Atom a = MakeIsNullAtom("t", "x", false);
  EXPECT_EQ(a.ToString(), "t.x IS NULL");
  Relation s = *exec::Select(r, Predicate(a));
  EXPECT_EQ(s.NumRows(), 1);
}

TEST(NullToleranceGuardTest, SimplificationIgnoresTolerantAtoms) {
  // SELECT above a LOJ where the only predicate touching the null side is
  // IS NULL: the LOJ must NOT degenerate (padded rows satisfy IS NULL!).
  NodePtr loj = Node::LeftOuterJoin(
      Node::Leaf("r1"), Node::Leaf("r2"),
      Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")));
  NodePtr q = Node::Select(loj, Predicate(MakeIsNullAtom("r2", "b", false)));
  NodePtr s = SimplifyOuterJoins(q);
  EXPECT_EQ(s->left()->kind(), OpKind::kLeftOuterJoin);

  // With IS NOT NULL the padded rows die: LOJ degenerates to inner join.
  NodePtr q2 = Node::Select(loj, Predicate(MakeIsNullAtom("r2", "b", true)));
  NodePtr s2 = SimplifyOuterJoins(q2);
  EXPECT_EQ(s2->left()->kind(), OpKind::kInnerJoin);
}

TEST(NullToleranceGuardTest, SimplifiedAntiJoinPatternStaysCorrect) {
  // The classic NOT EXISTS rewrite: LOJ + IS NULL filter. Execution must
  // match an anti join and survive simplification untouched.
  Catalog cat;
  Rng rng(1);
  RandomRelationOptions opt;
  opt.num_rows = 20;
  opt.domain = 6;
  AddRandomTables(2, opt, &rng, &cat);
  Predicate join_p(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"));
  NodePtr loj = Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                                    join_p);
  NodePtr pattern = Node::Project(
      Node::Select(loj, Predicate(MakeIsNullAtom("r2", "a", false))),
      {Attribute{"r1", "a"}, Attribute{"r1", "b"}, Attribute{"r1", "c"}});
  NodePtr anti =
      Node::AntiJoin(Node::Leaf("r1"), Node::Leaf("r2"), join_p);
  auto eq = ExecutionEquivalent(pattern, anti, cat);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
  EXPECT_EQ(SimplifyOuterJoins(pattern), pattern);
}

TEST(NullToleranceGuardTest, TolerantJoinPredicateBlocksReordering) {
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"),
               MakeIsNullAtom("r2", "b", false)});
  NodePtr q = Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"), p);
  EXPECT_FALSE(BuildHypergraph(q).ok());
}

TEST(NullToleranceGuardTest, OptimizerFallsBackToAsWritten) {
  Catalog cat;
  Rng rng(2);
  RandomRelationOptions opt;
  opt.num_rows = 12;
  opt.domain = 4;
  opt.null_fraction = 0.3;
  AddRandomTables(3, opt, &rng, &cat);
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"),
               MakeIsNullAtom("r2", "b", false)});
  NodePtr q = Node::Join(
      Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"), p),
      Node::Leaf("r3"),
      Predicate(MakeAtom("r1", "c", CmpOp::kEq, "r3", "c")));
  QueryOptimizer opt2(cat);
  auto result = opt2.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto eq = ExecutionEquivalent(q, result->best.expr, cat);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(SqlNullTest, ParseBindExecute) {
  Catalog cat;
  GSOPT_CHECK(cat.CreateTable("t", {"x", "y"}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(1), I(5)}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(2), N()}).ok());
  GSOPT_CHECK(cat.Insert("t", {I(3), N()}).ok());
  auto nulls = sql::ParseAndBind("SELECT t.x FROM t WHERE t.y IS NULL", cat);
  ASSERT_TRUE(nulls.ok()) << nulls.status().ToString();
  auto r1 = Execute(*nulls, cat);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->NumRows(), 2);
  auto not_nulls =
      sql::ParseAndBind("SELECT t.x FROM t WHERE t.y IS NOT NULL", cat);
  ASSERT_TRUE(not_nulls.ok());
  auto r2 = Execute(*not_nulls, cat);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->NumRows(), 1);
}

TEST(SqlNullTest, NotExistsPatternViaSql) {
  Catalog cat;
  Rng rng(3);
  RandomRelationOptions opt;
  opt.num_rows = 15;
  opt.domain = 5;
  AddRandomTables(2, opt, &rng, &cat);
  auto q = sql::ParseAndBind(
      "SELECT r1.a FROM r1 LEFT JOIN r2 ON r1.a = r2.a WHERE r2.a IS NULL",
      cat);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto rel = Execute(*q, cat);
  ASSERT_TRUE(rel.ok());
  NodePtr anti = Node::Project(
      Node::AntiJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                     Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"))),
      {Attribute{"r1", "a"}});
  auto expect = Execute(anti, cat);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(rel->NumRows(), expect->NumRows());
}

}  // namespace
}  // namespace gsopt
