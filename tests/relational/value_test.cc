#include "relational/value.h"

#include <gtest/gtest.h>

namespace gsopt {
namespace {

TEST(ValueTest, NullProperties) {
  Value n = Value::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n.type(), ValueType::kNull);
  EXPECT_FALSE(Value::Int(3).is_null());
}

TEST(ValueTest, CompareNumerics) {
  EXPECT_EQ(Value::Compare(Value::Int(1), Value::Int(2)).value(), -1);
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Int(2)).value(), 0);
  EXPECT_EQ(Value::Compare(Value::Int(3), Value::Int(2)).value(), 1);
  // Int/double coercion.
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.0)).value(), 0);
  EXPECT_EQ(Value::Compare(Value::Double(1.5), Value::Int(2)).value(), -1);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(Value::Compare(Value::String("a"), Value::String("b")).value(),
            -1);
  EXPECT_EQ(Value::Compare(Value::String("b"), Value::String("b")).value(), 0);
}

TEST(ValueTest, CompareWithNullIsUnknown) {
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Int(1)).has_value());
  EXPECT_FALSE(Value::Compare(Value::Int(1), Value::Null()).has_value());
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Null()).has_value());
}

TEST(ValueTest, MixedTypesIncomparable) {
  EXPECT_FALSE(
      Value::Compare(Value::Int(1), Value::String("1")).has_value());
}

TEST(ValueTest, IdentityEqualsTreatsNullEqual) {
  EXPECT_TRUE(Value::IdentityEquals(Value::Null(), Value::Null()));
  EXPECT_FALSE(Value::IdentityEquals(Value::Null(), Value::Int(0)));
  EXPECT_TRUE(Value::IdentityEquals(Value::Int(1), Value::Double(1.0)));
  EXPECT_FALSE(Value::IdentityEquals(Value::Int(1), Value::Int(2)));
}

TEST(ValueTest, IdentityLessTotalOrder) {
  EXPECT_TRUE(Value::IdentityLess(Value::Null(), Value::Int(-100)));
  EXPECT_FALSE(Value::IdentityLess(Value::Null(), Value::Null()));
  EXPECT_TRUE(Value::IdentityLess(Value::Int(5), Value::String("")));
  EXPECT_TRUE(Value::IdentityLess(Value::Int(1), Value::Int(2)));
}

TEST(ValueTest, HashConsistentWithIdentityEquals) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(TriTest, ThreeValuedConnectives) {
  EXPECT_EQ(TriAnd(Tri::kTrue, Tri::kUnknown), Tri::kUnknown);
  EXPECT_EQ(TriAnd(Tri::kFalse, Tri::kUnknown), Tri::kFalse);
  EXPECT_EQ(TriOr(Tri::kFalse, Tri::kUnknown), Tri::kUnknown);
  EXPECT_EQ(TriOr(Tri::kTrue, Tri::kUnknown), Tri::kTrue);
  EXPECT_EQ(TriNot(Tri::kUnknown), Tri::kUnknown);
  EXPECT_EQ(TriNot(Tri::kTrue), Tri::kFalse);
}

TEST(EvalCmpTest, NullIntolerance) {
  // Footnote 2 of the paper: comparison atoms are null in-tolerant.
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_EQ(EvalCmp(op, Value::Null(), Value::Int(1)), Tri::kUnknown);
    EXPECT_EQ(EvalCmp(op, Value::Int(1), Value::Null()), Tri::kUnknown);
  }
}

TEST(EvalCmpTest, AllOperators) {
  Value a = Value::Int(1), b = Value::Int(2);
  EXPECT_EQ(EvalCmp(CmpOp::kEq, a, b), Tri::kFalse);
  EXPECT_EQ(EvalCmp(CmpOp::kNe, a, b), Tri::kTrue);
  EXPECT_EQ(EvalCmp(CmpOp::kLt, a, b), Tri::kTrue);
  EXPECT_EQ(EvalCmp(CmpOp::kLe, a, a), Tri::kTrue);
  EXPECT_EQ(EvalCmp(CmpOp::kGt, b, a), Tri::kTrue);
  EXPECT_EQ(EvalCmp(CmpOp::kGe, a, b), Tri::kFalse);
}

TEST(EvalArithTest, NullPropagation) {
  EXPECT_TRUE(EvalArith(ArithOp::kAdd, Value::Null(), Value::Int(1)).is_null());
  EXPECT_TRUE(EvalArith(ArithOp::kMul, Value::Int(1), Value::Null()).is_null());
}

TEST(EvalArithTest, IntegerArithmeticStaysInt) {
  Value v = EvalArith(ArithOp::kMul, Value::Int(3), Value::Int(4));
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt(), 12);
}

TEST(EvalArithTest, DivisionIsDoubleAndZeroYieldsNull) {
  Value v = EvalArith(ArithOp::kDiv, Value::Int(3), Value::Int(2));
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 1.5);
  EXPECT_TRUE(EvalArith(ArithOp::kDiv, Value::Int(3), Value::Int(0)).is_null());
}

}  // namespace
}  // namespace gsopt
