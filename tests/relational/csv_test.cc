#include "relational/csv.h"

#include <gtest/gtest.h>

namespace gsopt {
namespace {

TEST(CsvTest, ParsesTypesAndNulls) {
  auto r = ParseCsv("t", "a,b,c\n1,2.5,hello\n-3,,\"world\"\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->NumRows(), 2);
  EXPECT_EQ(r->schema().ToString(), "(t.a, t.b, t.c)");
  EXPECT_EQ(r->row(0).values[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(r->row(0).values[1].AsDouble(), 2.5);
  EXPECT_EQ(r->row(0).values[2].AsString(), "hello");
  EXPECT_EQ(r->row(1).values[0].AsInt(), -3);
  EXPECT_TRUE(r->row(1).values[1].is_null());
  EXPECT_EQ(r->row(1).values[2].AsString(), "world");
}

TEST(CsvTest, QuotedFieldsWithCommasAndEscapes) {
  auto r = ParseCsv("t", "x\n\"a,b\"\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row(0).values[0].AsString(), "a,b");
  EXPECT_EQ(r->row(1).values[0].AsString(), "he said \"hi\"");
}

TEST(CsvTest, QuotedNumbersStayStrings) {
  auto r = ParseCsv("t", "x\n\"42\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row(0).values[0].type(), ValueType::kString);
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCsv("t", "").ok());
  EXPECT_FALSE(ParseCsv("t", "a,b\n1\n").ok());       // arity
  EXPECT_FALSE(ParseCsv("t", "a\n\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsv("t", ",b\n1,2\n").ok());      // empty column name
}

TEST(CsvTest, RoundTrip) {
  auto r = ParseCsv("t", "a,b\n1,alpha\n,\"x,y\"\n");
  ASSERT_TRUE(r.ok());
  std::string csv = ToCsv(*r);
  auto again = ParseCsv("t", csv);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << csv;
  EXPECT_TRUE(Relation::BagEquals(*r, *again));
}

TEST(CsvTest, SkipsBlankLines) {
  auto r = ParseCsv("t", "a\n1\n\n2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2);
}

TEST(CsvTest, LoadFileIntoCatalog) {
  std::string path = ::testing::TempDir() + "/gsopt_csv_test.csv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("k,v\n1,10\n2,20\n", f);
  fclose(f);
  Catalog cat;
  ASSERT_TRUE(LoadCsvFile(path, "kv", &cat).ok());
  auto rel = cat.Get("kv");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 2);
  EXPECT_FALSE(LoadCsvFile("/no/such/file.csv", "x", &cat).ok());
}

}  // namespace
}  // namespace gsopt
