#include "relational/relation.h"

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/datagen.h"
#include "relational/expr.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

TEST(SchemaTest, FindAndResolve) {
  Schema s({Attribute{"r1", "a"}, Attribute{"r1", "b"}, Attribute{"r2", "a"}});
  EXPECT_EQ(s.Find("r1", "b"), 1);
  EXPECT_EQ(s.Find("r9", "b"), -1);
  EXPECT_EQ(s.FindUnqualified("b"), 1);
  EXPECT_EQ(s.FindUnqualified("a"), -2);  // ambiguous
  EXPECT_TRUE(s.Resolve("r2", "a").ok());
  EXPECT_FALSE(s.Resolve("", "a").ok());
  EXPECT_TRUE(s.Resolve("", "b").ok());
}

TEST(SchemaTest, Concat) {
  Schema a({Attribute{"r1", "x"}});
  Schema b({Attribute{"r2", "y"}});
  Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.attr(1).Qualified(), "r2.y");
}

TEST(VirtualSchemaTest, FindAndConcat) {
  VirtualSchema a({"r1"});
  VirtualSchema b({"r2", "r3"});
  VirtualSchema c = VirtualSchema::Concat(a, b);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.Find("r3"), 2);
  EXPECT_EQ(c.Find("zz"), -1);
}

TEST(RelationTest, AddBaseRowAssignsVids) {
  Relation r = MakeRelation("t", {"x"}, {{I(5)}, {I(6)}});
  EXPECT_EQ(r.row(0).vids[0], 0);
  EXPECT_EQ(r.row(1).vids[0], 1);
}

TEST(RelationTest, NullTupleShape) {
  Relation r = MakeRelation("t", {"x", "y"}, {});
  Tuple t = r.NullTuple();
  EXPECT_EQ(t.values.size(), 2u);
  EXPECT_TRUE(t.values[0].is_null());
  EXPECT_EQ(t.vids[0], kNullRowId);
}

TEST(RelationTest, CanonicalStringSortsRowsAndColumns) {
  Relation a = MakeRelation("t", {"y", "x"}, {{I(2), I(1)}, {I(4), I(3)}});
  Relation b = MakeRelation("t", {"y", "x"}, {{I(4), I(3)}, {I(2), I(1)}});
  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());
}

TEST(CatalogTest, CreateInsertGet) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", {"x", "y"}).ok());
  EXPECT_FALSE(cat.CreateTable("t", {"z"}).ok());  // duplicate
  ASSERT_TRUE(cat.Insert("t", {I(1), I(2)}).ok());
  EXPECT_FALSE(cat.Insert("t", {I(1)}).ok());     // arity
  EXPECT_FALSE(cat.Insert("nope", {I(1)}).ok());  // missing
  auto r = cat.Get("t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 1);
  EXPECT_TRUE(cat.Has("t"));
  EXPECT_FALSE(cat.Has("u"));
}

TEST(CatalogTest, RegisterValidatesShape) {
  Catalog cat;
  Relation good = MakeRelation("v", {"x"}, {{I(1)}});
  ASSERT_TRUE(cat.Register("v", good).ok());
  Relation misnamed = MakeRelation("w", {"x"}, {});
  EXPECT_FALSE(cat.Register("not_w", misnamed).ok());
}

TEST(DatagenTest, RandomRelationRespectsOptions) {
  Rng rng(1);
  RandomRelationOptions opt;
  opt.num_rows = 100;
  opt.domain = 5;
  opt.null_fraction = 0.5;
  Relation r = MakeRandomRelation("t", {"a", "b"}, opt, &rng);
  EXPECT_EQ(r.NumRows(), 100);
  int nulls = 0;
  for (const Tuple& t : r.rows()) {
    for (const Value& v : t.values) {
      if (v.is_null()) {
        ++nulls;
      } else {
        EXPECT_GE(v.AsInt(), 0);
        EXPECT_LT(v.AsInt(), 5);
      }
    }
  }
  EXPECT_GT(nulls, 50);  // ~100 expected of 200 values
  EXPECT_LT(nulls, 150);
}

TEST(ExprTest, PredicateSchemaAndComplexity) {
  Predicate p({MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"),
               MakeAtom("r2", "b", CmpOp::kLt, "r3", "b")});
  auto rels = p.RelNames();
  EXPECT_EQ(rels.size(), 3u);
  EXPECT_TRUE(p.IsComplex());
  Predicate simple(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"));
  EXPECT_FALSE(simple.IsComplex());
}

TEST(ExprTest, ScalarEvalAndValidate) {
  Relation r = MakeRelation("t", {"x"}, {{I(3)}});
  ScalarPtr s = Scalar::Arith(ArithOp::kMul, Scalar::Column("t", "x"),
                              Scalar::Const(I(4)));
  EXPECT_EQ(s->Eval(r.row(0), r.schema()).AsInt(), 12);
  EXPECT_TRUE(s->Validate(r.schema()).ok());
  ScalarPtr bad = Scalar::Column("t", "nope");
  EXPECT_FALSE(bad->Validate(r.schema()).ok());
  EXPECT_TRUE(bad->Eval(r.row(0), r.schema()).is_null());
}

TEST(ExprTest, PredicateShortCircuitsOnFalse) {
  Relation r = MakeRelation("t", {"x"}, {{I(3)}});
  Predicate p({MakeConstAtom("t", "x", CmpOp::kGt, I(100)),
               MakeConstAtom("t", "x", CmpOp::kEq, I(3))});
  EXPECT_EQ(p.Eval(r.row(0), r.schema()), Tri::kFalse);
}

TEST(ExprTest, TautologyAtomAlwaysTrue) {
  Relation r = MakeRelation("t", {"x"}, {{Value::Null()}});
  Predicate p(MakeTautologyAtom());
  EXPECT_TRUE(p.Satisfied(r.row(0), r.schema()));
}

TEST(ExprTest, ToStringRoundTripsStructure) {
  Atom a = MakeAtom("r1", "a", CmpOp::kLe, "r2", "b");
  EXPECT_EQ(a.ToString(), "r1.a <= r2.b");
  Predicate p({a, MakeConstAtom("r1", "c", CmpOp::kNe, I(7))});
  EXPECT_EQ(p.ToString(), "r1.a <= r2.b AND r1.c <> 7");
  EXPECT_EQ(Predicate::True().ToString(), "TRUE");
}

}  // namespace
}  // namespace gsopt
