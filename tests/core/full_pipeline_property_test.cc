// End-to-end torture property: random queries where a random join/outer-
// join subtree is wrapped in a GROUP BY view and the remaining relations
// attach through predicates that may reference the aggregate output. The
// full pipeline (simplify -> normalize/pull-up -> hypergraph -> enumerate
// -> compensate) must keep EVERY plan bag-equal to the as-written result.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "enumerate/random_query.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

struct Case {
  uint64_t seed;
  int view_rels;   // relations inside the aggregation view
  int outer_rels;  // relations joined around it
  bool agg_pred;   // outer predicate references the aggregate output
};

class FullPipelineProperty : public ::testing::TestWithParam<Case> {};

TEST_P(FullPipelineProperty, EveryPlanMatchesAsWritten) {
  const Case& c = GetParam();
  Rng rng(c.seed);

  // Aggregation view over a random join/outer-join tree on r1..r<view>.
  RandomQueryOptions vopt;
  vopt.num_rels = c.view_rels;
  vopt.loj_prob = 0.4;
  vopt.foj_prob = 0.0;
  vopt.extra_atom_prob = 0.3;
  NodePtr view_base = MakeRandomQuery(vopt, &rng);

  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "b"}};
  if (c.view_rels >= 2) spec.group_cols.push_back(Attribute{"r2", "b"});
  exec::AggSpec agg;
  agg.func = rng.Bernoulli(0.5) ? exec::AggFunc::kCount : exec::AggFunc::kMax;
  agg.input = Scalar::Column("r1", "c");
  agg.out_rel = "V";
  agg.out_name = "agg";
  spec.aggs = {agg};
  NodePtr query = Node::GroupBy(view_base, spec);

  // Attach the remaining relations one at a time with random operators.
  for (int i = 0; i < c.outer_rels; ++i) {
    std::string rel = "r" + std::to_string(c.view_rels + 1 + i);
    Predicate p(MakeAtom("r1", "b", CmpOp::kEq, rel, "a"));
    if (c.agg_pred && i == 0) {
      CmpOp op = rng.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kNe;
      p.AddAtom(MakeAtom(rel, "b", op, "V", "agg"));
    }
    double roll = rng.NextDouble();
    if (roll < 0.4) {
      query = Node::LeftOuterJoin(query, Node::Leaf(rel), p);
    } else if (roll < 0.6) {
      query = Node::RightOuterJoin(Node::Leaf(rel), query, p);
    } else {
      query = Node::Join(query, Node::Leaf(rel), p);
    }
  }

  int total_rels = c.view_rels + c.outer_rels;
  for (uint64_t dseed : {c.seed * 7 + 1, c.seed * 7 + 2}) {
    Catalog cat;
    Rng drng(dseed);
    RandomRelationOptions ropt;
    ropt.num_rows = 7;
    ropt.domain = 3;
    ropt.null_fraction = 0.12;
    AddRandomTables(total_rels, ropt, &drng, &cat);

    auto ref = Execute(query, cat);
    ASSERT_TRUE(ref.ok()) << query->ToString();

    QueryOptimizer opt(cat);
    OptimizeOptions oo;
    oo.prune = false;
    auto plans = opt.EnumerateFullPlans(query, oo);
    ASSERT_TRUE(plans.ok()) << plans.status().ToString() << "\n"
                            << query->ToString();
    ASSERT_FALSE(plans->empty());
    for (const PlanInfo& p : *plans) {
      auto got = Execute(p.expr, cat);
      ASSERT_TRUE(got.ok()) << p.expr->ToString();
      ASSERT_TRUE(Relation::BagEquals(*ref, *got))
          << "seed " << c.seed << " dseed " << dseed
          << "\nquery: " << query->ToString()
          << "\nplan:  " << p.expr->ToString();
    }
    // And the pruned pipeline picks an equivalent plan too.
    auto best = opt.Optimize(query);
    ASSERT_TRUE(best.ok());
    auto got = Execute(best->best.expr, cat);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(Relation::BagEquals(*ref, *got));
  }
}

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  uint64_t seed = 5000;
  for (int view_rels : {1, 2, 3}) {
    for (int outer_rels : {1, 2}) {
      for (bool agg_pred : {false, true}) {
        for (int rep = 0; rep < 3; ++rep) {
          cases.push_back({seed++, view_rels, outer_rels, agg_pred});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AggViews, FullPipelineProperty,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace gsopt
