// QueryOptimizer facade: pipeline behaviour, no-regression guarantee,
// pruning vs exhaustive agreement, projection-root handling, fallbacks.
#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "enumerate/random_query.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Catalog MakeCatalog(uint64_t seed, int n, int rows = 20) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = 6;
  opt.null_fraction = 0.1;
  AddRandomTables(n, opt, &rng, &cat);
  return cat;
}

TEST(OptimizerFacadeTest, NoRegressionAgainstAsWritten) {
  // The chosen plan's estimated cost never exceeds the (simplified)
  // as-written plan: the original stays a candidate.
  Rng rng(900);
  for (int trial = 0; trial < 20; ++trial) {
    Catalog cat = MakeCatalog(900 + trial, 4);
    RandomQueryOptions qopt;
    qopt.num_rels = 4;
    qopt.loj_prob = 0.4;
    qopt.foj_prob = 0.15;
    qopt.extra_atom_prob = 0.5;
    NodePtr q = MakeRandomQuery(qopt, &rng);
    QueryOptimizer opt(cat);
    auto result = opt.Optimize(q);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->best.cost,
              opt.cost_model().Cost(result->simplified) * (1 + 1e-9));
  }
}

TEST(OptimizerFacadeTest, PrunedAndExhaustiveAgreeOnBestCost) {
  for (uint64_t seed : {71ull, 72ull, 73ull}) {
    Catalog cat = MakeCatalog(seed, 4);
    Rng rng(seed);
    RandomQueryOptions qopt;
    qopt.num_rels = 4;
    qopt.loj_prob = 0.5;
    qopt.extra_atom_prob = 0.5;
    NodePtr q = MakeRandomQuery(qopt, &rng);
    QueryOptimizer opt(cat);
    OptimizeOptions pruned;
    pruned.prune = true;
    OptimizeOptions full;
    full.prune = false;
    auto rp = opt.Optimize(q, pruned);
    auto rf = opt.Optimize(q, full);
    ASSERT_TRUE(rp.ok());
    ASSERT_TRUE(rf.ok());
    EXPECT_NEAR(rp->best.cost, rf->best.cost, 1e-6 * rf->best.cost)
        << q->ToString();
    EXPECT_LE(rp->plans_considered, rf->plans_considered);
  }
}

TEST(OptimizerFacadeTest, SingleTableQuery) {
  Catalog cat = MakeCatalog(1, 1);
  QueryOptimizer opt(cat);
  auto result = opt.Optimize(Node::Leaf("r1"));
  ASSERT_TRUE(result.ok());
  auto rel = Execute(result->best.expr, cat);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 20);
}

TEST(OptimizerFacadeTest, RootProjectionIsReappliedOnEveryPlan) {
  Catalog cat = MakeCatalog(2, 3);
  NodePtr joins = Node::LeftOuterJoin(
      Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                 Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"))),
      Node::Leaf("r3"),
      Predicate(MakeAtom("r2", "b", CmpOp::kEq, "r3", "b")));
  NodePtr q = Node::Project(joins, {Attribute{"r1", "a"},
                                    Attribute{"r3", "c"}});
  QueryOptimizer opt(cat);
  OptimizeOptions oo;
  oo.prune = false;
  auto plans = opt.EnumerateFullPlans(q, oo);
  ASSERT_TRUE(plans.ok());
  EXPECT_GT(plans->size(), 1u);
  auto ref = Execute(q, cat);
  ASSERT_TRUE(ref.ok());
  for (const PlanInfo& p : *plans) {
    EXPECT_EQ(p.expr->kind(), OpKind::kProject);
    auto got = Execute(p.expr, cat);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->schema().size(), 2);
    EXPECT_TRUE(Relation::BagEquals(*ref, *got));
  }
}

TEST(OptimizerFacadeTest, OpaqueOnlyQueryFallsBack) {
  // A bare GROUP BY has no join tree: the facade must still return a
  // valid (single) plan.
  Catalog cat = MakeCatalog(3, 1);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "a"}};
  exec::AggSpec cnt;
  cnt.func = exec::AggFunc::kCountStar;
  cnt.out_rel = "q";
  cnt.out_name = "c";
  spec.aggs = {cnt};
  NodePtr q = Node::GroupBy(Node::Leaf("r1"), spec);
  QueryOptimizer opt(cat);
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok());
  auto eq = ExecutionEquivalent(q, result->best.expr, cat);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OptimizerFacadeTest, SimplificationVisibleInResult) {
  Catalog cat = MakeCatalog(4, 3);
  // LOJ made redundant by the join above it.
  NodePtr q = Node::Join(
      Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                          Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2",
                                             "a"))),
      Node::Leaf("r3"),
      Predicate(MakeAtom("r2", "b", CmpOp::kEq, "r3", "b")));
  QueryOptimizer opt(cat);
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->simplified->ToString(), q->ToString());
  auto eq = ExecutionEquivalent(q, result->best.expr, cat);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(OptimizerFacadeTest, ModesAreOrderedByCoverage) {
  Catalog cat = MakeCatalog(5, 4);
  // Complex-predicate query: generalized mode must consider at least as
  // many plans as the baselines (without pruning).
  NodePtr q = Node::LeftOuterJoin(
      Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                          Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2",
                                             "a"))),
      Node::Join(Node::Leaf("r3"), Node::Leaf("r4"),
                 Predicate(MakeAtom("r3", "a", CmpOp::kEq, "r4", "a"))),
      Predicate({MakeAtom("r1", "b", CmpOp::kEq, "r3", "b"),
                 MakeAtom("r2", "c", CmpOp::kLe, "r4", "c")}));
  QueryOptimizer opt(cat);
  OptimizeOptions oo;
  oo.prune = false;
  size_t counts[3];
  int i = 0;
  for (EnumMode m : {EnumMode::kBinaryOnly, EnumMode::kBaseline,
                     EnumMode::kGeneralized}) {
    oo.mode = m;
    auto plans = opt.EnumerateFullPlans(q, oo);
    ASSERT_TRUE(plans.ok());
    counts[i++] = plans->size();
  }
  EXPECT_LE(counts[0], counts[1]);
  EXPECT_LT(counts[1], counts[2]);
}

TEST(OptimizerFacadeTest, NullQueryRejected) {
  Catalog cat = MakeCatalog(6, 1);
  QueryOptimizer opt(cat);
  EXPECT_FALSE(opt.Optimize(nullptr).ok());
}

}  // namespace
}  // namespace gsopt
