// Session / PreparedStatement serving layer and the sharded LRU plan
// cache: cross-literal template reuse is exact, statistics-epoch bumps
// invalidate lazily, LRU eviction respects capacity, concurrent serving
// stays exact, and the Session boundary rejects invalid options and
// parameter bindings with kInvalidArgument.
#include "core/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "algebra/execute.h"
#include "base/fault_injector.h"
#include "base/rng.h"
#include "core/plan_cache.h"
#include "exec/executor.h"
#include "exec/sort.h"
#include "relational/datagen.h"
#include "sql/binder.h"

namespace gsopt {
namespace {

Catalog MakeCatalog(uint64_t seed, int n, int rows = 20) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = 6;
  opt.null_fraction = 0.1;
  AddRandomTables(n, opt, &rng, &cat);
  return cat;
}

// A join query over r1..r3 with a literal pivot in a selection atom.
NodePtr PivotQuery(int64_t pivot) {
  NodePtr j = Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                         Predicate(MakeAtom("r1", "a", CmpOp::kEq,
                                            "r2", "a")));
  j = Node::LeftOuterJoin(j, Node::Leaf("r3"),
                          Predicate(MakeAtom("r2", "b", CmpOp::kEq,
                                             "r3", "b")));
  return Node::Select(j, Predicate(MakeConstAtom("r1", "b", CmpOp::kLe,
                                                 Value::Int(pivot))));
}

TEST(ParameterizeQueryTest, LiteralsLiftToSlotsAndFingerprintIsInvariant) {
  ParameterizedQuery a = ParameterizeQuery(PivotQuery(1));
  ParameterizedQuery b = ParameterizeQuery(PivotQuery(4));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.num_explicit, 0);
  ASSERT_EQ(a.lifted.size(), b.lifted.size());
  // The pivot (and only structural difference) landed in the same slot.
  bool found = false;
  for (size_t i = 0; i < a.lifted.size(); ++i) {
    if (a.lifted[i].ToString() != b.lifted[i].ToString()) {
      EXPECT_EQ(a.lifted[i].ToString(), Value::Int(1).ToString());
      EXPECT_EQ(b.lifted[i].ToString(), Value::Int(4).ToString());
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Substituting the lifted values back reproduces the original tree.
  auto restored = SubstituteParams(a.tree, a.lifted);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->ToString(), PivotQuery(1)->ToString());
  // A different shape fingerprints differently.
  ParameterizedQuery other =
      ParameterizeQuery(Node::Select(Node::Leaf("r1"),
                                     Predicate(MakeConstAtom(
                                         "r1", "a", CmpOp::kEq,
                                         Value::Int(1)))));
  EXPECT_NE(other.fingerprint, a.fingerprint);
}

TEST(ParameterizeQueryTest, OrderByDirectionIsPartOfTheFingerprint) {
  // ASC and DESC enforcers must never share a cached template: a hit
  // would replay the wrong output order even though the bags agree.
  auto ordered = [](int64_t pivot, bool desc) {
    exec::SortSpec spec{{Attribute{"r1", "a"}, desc},
                        {Attribute{"r2", "b"}, false}};
    return Node::Sort(PivotQuery(pivot), std::move(spec));
  };
  ParameterizedQuery asc1 = ParameterizeQuery(ordered(1, false));
  ParameterizedQuery asc4 = ParameterizeQuery(ordered(4, false));
  ParameterizedQuery desc1 = ParameterizeQuery(ordered(1, true));
  // Literals still lift: same direction, different pivot -> same template.
  EXPECT_EQ(asc1.fingerprint, asc4.fingerprint);
  EXPECT_EQ(asc1.canonical, asc4.canonical);
  // Flipping one key's direction changes the template identity.
  EXPECT_NE(asc1.fingerprint, desc1.fingerprint);
  // And so does dropping the enforcer entirely.
  ParameterizedQuery bare = ParameterizeQuery(PivotQuery(1));
  EXPECT_NE(asc1.fingerprint, bare.fingerprint);
}

TEST(SubstituteParamsTest, UnboundSlotIsInvalidArgument) {
  NodePtr tree = Node::Select(
      Node::Leaf("r1"),
      Predicate(Atom{Atom::Kind::kCompare, Scalar::Column("r1", "a"),
                     CmpOp::kEq, Scalar::Param(2)}));
  auto st = SubstituteParams(tree, {Value::Int(1)});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanCacheTest, HitAcrossLiteralsIsBagEqualToFreshOptimization) {
  for (uint64_t seed : {501ull, 502ull, 503ull}) {
    Catalog cat = MakeCatalog(seed, 3);
    Session session(cat);
    for (int64_t pivot : {0, 2, 5}) {
      NodePtr q = PivotQuery(pivot);
      auto served = session.Run(q);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      // Fresh literal optimization, no cache anywhere.
      QueryOptimizer opt(cat);
      auto fresh = opt.Optimize(q);
      ASSERT_TRUE(fresh.ok());
      auto expect = Execute(fresh->best.expr, cat);
      ASSERT_TRUE(expect.ok());
      EXPECT_TRUE(Relation::BagEquals(*expect, served->rows))
          << "seed " << seed << " pivot " << pivot;
      EXPECT_EQ(served->cache_hit, pivot != 0) << "pivot " << pivot;
    }
    PlanCacheStats stats = session.cache_stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
  }
}

TEST(PlanCacheTest, CatalogMutationBumpsEpochAndInvalidates) {
  Catalog cat = MakeCatalog(77, 3);
  Session session(cat);
  NodePtr q = PivotQuery(3);
  ASSERT_TRUE(session.Run(q).ok());
  uint64_t epoch_before = session.epoch();

  // New rows change the statistics the cached plan was costed under.
  ASSERT_TRUE(
      cat.Insert("r1", {Value::Int(1), Value::Int(2), Value::Int(3)}).ok());
  auto served = session.Run(q);
  ASSERT_TRUE(served.ok());
  EXPECT_FALSE(served->cache_hit);
  EXPECT_GT(session.epoch(), epoch_before);
  PlanCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.invalidations, 1u);
  // The re-optimized plan sees the new row.
  auto expect = Execute(q, cat);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(Relation::BagEquals(*expect, served->rows));
  // And the rebuilt entry serves hits again.
  auto again = session.Run(q);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
}

TEST(PlanCacheTest, LruEvictsOldestShapeAtCapacity) {
  Catalog cat = MakeCatalog(78, 3);
  Session session(cat, SessionOptions{}
                           .WithPlanCacheCapacity(2)
                           .WithPlanCacheShards(1));
  // Three distinct shapes (different selection columns).
  auto shape = [](const std::string& col) {
    return Node::Select(
        Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                   Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"))),
        Predicate(MakeConstAtom("r1", col, CmpOp::kLe, Value::Int(3))));
  };
  ASSERT_TRUE(session.Run(shape("a")).ok());
  ASSERT_TRUE(session.Run(shape("b")).ok());
  ASSERT_TRUE(session.Run(shape("a")).ok());  // touch: "a" is now MRU
  ASSERT_TRUE(session.Run(shape("c")).ok());  // evicts "b"
  PlanCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  auto a_again = session.Run(shape("a"));
  ASSERT_TRUE(a_again.ok());
  EXPECT_TRUE(a_again->cache_hit);  // survived as MRU
  auto b_again = session.Run(shape("b"));
  ASSERT_TRUE(b_again.ok());
  EXPECT_FALSE(b_again->cache_hit);  // was evicted
}

TEST(PlanCacheTest, ConcurrentServingStaysExact) {
  Catalog cat = MakeCatalog(79, 3);
  Session session(cat, SessionOptions{}.WithPlanCacheShards(4));
  // Ground truth per pivot, computed serially without any cache.
  constexpr int kPivots = 4;
  std::vector<Relation> expected;
  for (int64_t p = 0; p < kPivots; ++p) {
    auto r = Execute(PivotQuery(p), cat);
    ASSERT_TRUE(r.ok());
    expected.push_back(std::move(*r));
  }
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 16;
  std::atomic<int> wrong{0}, errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        int64_t pivot = (t + i) % kPivots;
        auto served = session.Run(PivotQuery(pivot));
        if (!served.ok()) {
          ++errors;
          return;
        }
        if (!Relation::BagEquals(expected[static_cast<size_t>(pivot)],
                                 served->rows)) {
          ++wrong;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(wrong.load(), 0);
  PlanCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kItersPerThread));
  // All pivots share one shape; at least one miss optimized it, and the
  // overwhelming majority of lookups hit.
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kThreads * kItersPerThread -
                                              kThreads));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SessionTest, PreparedStatementBindsExplicitParameters) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", {"k", "v"}).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        cat.Insert("t", {Value::Int(i % 4), Value::Int(i)}).ok());
  }
  Session session(cat);
  auto stmt = session.Prepare("SELECT * FROM t WHERE t.k = $1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->num_params(), 1);
  for (int64_t k = 0; k < 4; ++k) {
    auto got = stmt->Bind({Value::Int(k)}).Execute();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->rows.NumRows(), 2);
    // Literal equivalent, outside the session.
    auto tree = sql::ParseAndBind(
        "SELECT * FROM t WHERE t.k = " + std::to_string(k), cat);
    ASSERT_TRUE(tree.ok());
    auto expect = Execute(*tree, cat);
    ASSERT_TRUE(expect.ok());
    EXPECT_TRUE(Relation::BagEquals(*expect, got->rows)) << "k=" << k;
  }
  // The explicit-parameter statement and its literal instantiations share
  // one cached template.
  EXPECT_EQ(session.cache_stats().entries, 1u);
}

TEST(SessionTest, BoundaryValidationIsInvalidArgument) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", {"k"}).ok());
  ASSERT_TRUE(cat.Insert("t", {Value::Int(1)}).ok());

  {  // max_plans == 0 rejected before any parsing work.
    Session bad(cat, SessionOptions{}.WithMaxPlans(0));
    auto q = bad.Query("SELECT * FROM t");
    ASSERT_FALSE(q.ok());
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
    auto p = bad.Prepare("SELECT * FROM t");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
    auto r = bad.Run(Node::Leaf("t"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }

  Session session(cat);
  {  // One-shot Query on parameterized SQL needs Prepare/Bind.
    auto q = session.Query("SELECT * FROM t WHERE t.k = $1");
    ASSERT_FALSE(q.ok());
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Parameter-count mismatch at Execute and at ExecutablePlan.
    auto stmt = session.Prepare("SELECT * FROM t WHERE t.k = $1");
    ASSERT_TRUE(stmt.ok());
    auto none = stmt->Execute();
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);
    auto extra = stmt->Execute({Value::Int(1), Value::Int(2)});
    ASSERT_FALSE(extra.ok());
    EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);
    auto plan = stmt->ExecutablePlan({});
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  }
  {  // $0 is rejected at parse time ($n indices are 1-based).
    auto stmt = session.Prepare("SELECT * FROM t WHERE t.k = $0");
    ASSERT_FALSE(stmt.ok());
    EXPECT_EQ(stmt.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SessionTest, TextMemoServesRepeatedSqlAndTracksCatalogVersion) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", {"k", "v"}).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cat.Insert("t", {Value::Int(i), Value::Int(10 * i)}).ok());
  }
  Session session(cat);
  const std::string sql = "SELECT * FROM t WHERE t.k <= 3";
  auto first = session.Query(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  // Byte-identical text: served past the parser AND the plan search.
  auto memoized = session.Query(sql);
  ASSERT_TRUE(memoized.ok());
  EXPECT_TRUE(memoized->cache_hit);
  EXPECT_TRUE(Relation::BagEquals(first->rows, memoized->rows));
  // A literal variant is a new text but the same fingerprint: still a
  // plan-cache hit, one entry total.
  auto variant = session.Query("SELECT * FROM t WHERE t.k <= 2");
  ASSERT_TRUE(variant.ok());
  EXPECT_TRUE(variant->cache_hit);
  EXPECT_EQ(session.cache_stats().entries, 1u);
  // Catalog mutation: the stale text entry (and plan) must not be served
  // blindly -- the new row shows up in the result.
  ASSERT_TRUE(cat.Insert("t", {Value::Int(0), Value::Int(-1)}).ok());
  auto after = session.Query(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.NumRows(), first->rows.NumRows() + 1);
}

TEST(SessionTest, MissPathExecutionFailureNeverPoisonsTheCache) {
  // Regression: a miss used to install the optimized template BEFORE the
  // first execution ran. A query whose first execution fails (here: an
  // injected budget-check fault) must leave the cache empty -- the next
  // call re-optimizes and, once execution succeeds, only then publishes.
  Catalog cat = MakeCatalog(81, 3);
  FaultInjector::Options o;
  o.seed = 1;
  o.period = 1;
  o.max_faults = 1;  // exactly the first probe fires
  o.site_mask = FaultInjector::MaskOf({FaultSite::kBudgetCheck});
  FaultInjector fi(o);
  Session session(cat, SessionOptions{}.WithFault(&fi).WithRetries(0));
  NodePtr q = PivotQuery(2);

  auto failed = session.Run(q);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session.cache_stats().entries, 0u)
      << "failed miss installed a template";

  // Fault exhausted: the rerun is a fresh miss that succeeds and installs.
  auto ok = session.Run(q);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(ok->cache_hit);
  EXPECT_EQ(session.cache_stats().entries, 1u);
  auto hit = session.Run(q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  // The poisoning guard must not have changed the answer.
  auto expect = Execute(q, cat);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(Relation::BagEquals(*expect, hit->rows));
}

TEST(SessionTest, TransientFaultIsRetriedPersistentIsNot) {
  Catalog cat = MakeCatalog(82, 3, /*rows=*/40);
  static exec::Executor executor(4);
  executor.set_min_parallel_rows(1);
  NodePtr q = PivotQuery(3);

  {  // Transient (kUnavailable dispatch fault): one bounded retry wins.
    FaultInjector::Options o;
    o.seed = 2;
    o.period = 1;
    o.max_faults = 1;
    o.site_mask = FaultInjector::MaskOf({FaultSite::kDispatch});
    FaultInjector fi(o);
    Session session(cat, SessionOptions{}
                             .WithExecutor(&executor)
                             .WithFault(&fi)
                             .WithRetries(2)
                             .WithRetryBackoff(std::chrono::microseconds(1)));
    auto served = session.Run(q);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->transient_retries, 1);
    EXPECT_EQ(fi.fired_total(), 1u);
    auto expect = Execute(q, cat);
    ASSERT_TRUE(expect.ok());
    EXPECT_TRUE(Relation::BagEquals(*expect, served->rows));
  }

  {  // Persistent (kResourceExhausted): never retried, one fault consumed.
    FaultInjector::Options o;
    o.seed = 3;
    o.period = 1;
    o.site_mask = FaultInjector::MaskOf({FaultSite::kBudgetCheck});
    FaultInjector fi(o);
    Session session(cat, SessionOptions{}
                             .WithFault(&fi)
                             .WithRetries(3)
                             .WithRetryBackoff(std::chrono::microseconds(1)));
    auto served = session.Run(q);
    ASSERT_FALSE(served.ok());
    EXPECT_EQ(served.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(fi.fired_total(), 1u) << "persistent failure was retried";
  }
}

TEST(SessionTest, CachedPlanSpillsUnderMemoryPressure) {
  Catalog cat = MakeCatalog(83, 3, /*rows=*/60);
  NodePtr q = PivotQuery(4);
  // Reference: unconstrained session.
  Session plain(cat);
  auto expect = plain.Run(q);
  ASSERT_TRUE(expect.ok());

  ResourceBudget budget;
  budget.WithMaxMemory(2 * 1024);
  exec::SpillConfig spill;
  spill.enabled = true;
  Session session(cat, SessionOptions{}.WithBudget(&budget).WithSpill(&spill));
  auto warm = session.Run(q);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(Relation::BagEquals(expect->rows, warm->rows));
  // The cached template's re-execution degrades out-of-core identically.
  auto hit = session.Run(q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_TRUE(Relation::BagEquals(expect->rows, hit->rows));
  EXPECT_EQ(budget.memory_charged(), 0u);
}

TEST(SessionTest, BudgetGovernsCachedExecutionToo) {
  Catalog cat = MakeCatalog(80, 3, /*rows=*/40);
  Session session(cat);
  NodePtr q = PivotQuery(5);
  ASSERT_TRUE(session.Run(q).ok());  // warm the cache
  // A hit skips enumeration but its execution still honors the budget.
  ResourceBudget tiny;
  tiny.WithMaxRows(1);
  auto served = session.Run(q, ExecOptions{}.WithBudget(&tiny));
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace gsopt
