// The serving-API redesign surface: QueryResult carries rows + stats +
// dispositions as one value (no side channels), the shared ExecPolicy /
// ExecPolicyBuilder mixin gives SessionOptions and ExecuteOptions one
// merge rule instead of triplicated With* chains, and the wire-stable
// error taxonomy (ErrorClass, IsRetryable) keeps its documented contract.
#include "core/session.h"

#include <gtest/gtest.h>

#include <string>

#include "algebra/execute.h"
#include "base/rng.h"
#include "base/status.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Catalog MakeCatalog() {
  Catalog cat;
  Rng rng(11);
  RandomRelationOptions opt;
  opt.num_rows = 25;
  opt.domain = 6;
  AddRandomTables(3, opt, &rng, &cat);
  return cat;
}

// ---------------------------------------------------------------------------
// MergeExecPolicy semantics.

TEST(ExecPolicy, MergePointersOverrideWhenNonNull) {
  ResourceBudget session_budget;
  ResourceBudget call_budget;
  ExecPolicy base;
  base.budget = &session_budget;
  base.collect_stats = true;

  ExecPolicy call;  // everything defaulted: base wins wholesale
  ExecPolicy merged = MergeExecPolicy(base, call);
  EXPECT_EQ(merged.budget, &session_budget);
  EXPECT_TRUE(merged.collect_stats);

  call.budget = &call_budget;
  merged = MergeExecPolicy(base, call);
  EXPECT_EQ(merged.budget, &call_budget) << "per-call pointer must win";
}

TEST(ExecPolicy, MergeModeEnumsOverrideWhenNotAuto) {
  ExecPolicy base;
  base.batch = exec::BatchMode::kForce;
  base.join = exec::JoinStrategy::kHashOnly;

  ExecPolicy call;
  EXPECT_EQ(MergeExecPolicy(base, call).batch, exec::BatchMode::kForce)
      << "kAuto defers to the layer below";

  call.batch = exec::BatchMode::kOff;
  ExecPolicy merged = MergeExecPolicy(base, call);
  EXPECT_EQ(merged.batch, exec::BatchMode::kOff);
  EXPECT_EQ(merged.join, exec::JoinStrategy::kHashOnly)
      << "untouched enums keep the session default";
}

TEST(ExecPolicy, CollectStatsIsStickyOr) {
  ExecPolicy base;
  base.collect_stats = true;
  ExecPolicy call;  // false
  EXPECT_TRUE(MergeExecPolicy(base, call).collect_stats)
      << "a call cannot un-request session-level stats collection";
  EXPECT_TRUE(MergeExecPolicy(call, base).collect_stats);
}

// The shared builder mixin: both option structs expose the same fluent
// chain, writing through to their embedded policy.
TEST(ExecPolicy, BuilderMixinCoversBothOptionStructs) {
  ResourceBudget budget;
  ExecuteOptions xo;
  xo.WithBudget(&budget).WithBatchMode(exec::BatchMode::kOff)
      .WithCollectStats();
  EXPECT_EQ(xo.budget, &budget);
  EXPECT_EQ(xo.batch, exec::BatchMode::kOff);
  EXPECT_TRUE(xo.collect_stats);

  SessionOptions so;
  so.WithBloomMode(exec::BloomMode::kOff).WithCollectStats();
  EXPECT_EQ(so.exec.bloom, exec::BloomMode::kOff);
  EXPECT_TRUE(so.exec.collect_stats);
  // SessionOptions::WithBudget covers BOTH halves: optimization and
  // execution share one budget.
  so.WithBudget(&budget);
  EXPECT_EQ(so.optimize.budget, &budget);
  EXPECT_EQ(so.exec.budget, &budget);
}

// ---------------------------------------------------------------------------
// QueryResult: one value, no side channels.

TEST(QueryResult, CarriesRowsPlanAndDisposition) {
  Catalog cat = MakeCatalog();
  Session session(cat);
  auto r1 = session.Query("SELECT * FROM r1 WHERE r1.a = 2");
  ASSERT_TRUE(r1.ok());
  EXPECT_NE(r1.value().plan, nullptr);
  EXPECT_FALSE(r1.value().cache_hit) << "first serve optimizes";
  EXPECT_EQ(r1.value().transient_retries, 0);
  EXPECT_EQ(r1.value().stats, nullptr) << "stats are opt-in";
  // The compatibility accessor aliases the rows field.
  EXPECT_EQ(&r1.value().relation(), &r1.value().rows);

  auto r2 = session.Query("SELECT * FROM r1 WHERE r1.a = 5");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().cache_hit)
      << "same shape, different literal: template reuse";
}

TEST(QueryResult, CollectStatsPopulatesOwnedStatsTree) {
  Catalog cat = MakeCatalog();
  Session session(cat);
  ExecuteOptions xo;
  xo.WithCollectStats();
  auto r = session.Query("SELECT * FROM r1 JOIN r2 ON r1.a = r2.a", xo);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.value().stats, nullptr);
  // The root operator's output is the result itself.
  EXPECT_EQ(r.value().stats->rows_out,
            static_cast<uint64_t>(r.value().rows.NumRows()));

  // A caller-owned stats root keeps the legacy side channel and the
  // result's owned tree stays null (no double accounting).
  exec::OperatorStats mine;
  ExecuteOptions legacy;
  legacy.WithCollectStats().WithStats(&mine);
  auto r2 = session.Query("SELECT * FROM r2", legacy);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().stats, nullptr);
}

TEST(QueryResult, SessionLevelCollectStatsAppliesToEveryCall) {
  Catalog cat = MakeCatalog();
  Session session(cat, SessionOptions{}.WithCollectStats());
  auto r = session.Query("SELECT * FROM r3");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().stats, nullptr);
}

TEST(QueryResult, PreparedExecuteReportsCacheHit) {
  Catalog cat = MakeCatalog();
  Session session(cat);
  auto stmt = session.Prepare("SELECT * FROM r2 WHERE r2.b = $1");
  ASSERT_TRUE(stmt.ok());
  auto r = stmt.value().Execute({Value::Int(3)});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().cache_hit) << "executing a prepared template is reuse";
}

// ---------------------------------------------------------------------------
// The wire-stable error taxonomy.

TEST(ErrorTaxonomy, ClassMappingIsStable) {
  EXPECT_EQ(Status::OK().error_class(), ErrorClass::kOk);
  EXPECT_EQ(Status::InvalidArgument("x").error_class(), ErrorClass::kInvalid);
  EXPECT_EQ(Status::NotFound("x").error_class(), ErrorClass::kInvalid);
  EXPECT_EQ(Status::ResourceExhausted("x").error_class(),
            ErrorClass::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").error_class(), ErrorClass::kTransient);
  EXPECT_EQ(Status::Shed("x").error_class(), ErrorClass::kShed);
  EXPECT_EQ(Status::Internal("x").error_class(), ErrorClass::kInternal);
}

TEST(ErrorTaxonomy, RetryContract) {
  // IsTransient: an identical in-process retry may succeed.
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_FALSE(Status::Shed("x").IsTransient())
      << "a shed must not be retried in place against the same server";
  // IsRetryable: the request is worth re-issuing (later / elsewhere).
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::Shed("x").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsRetryable())
      << "an identical attempt meets the identical cap";
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
}

TEST(ErrorTaxonomy, WireByteRoundTrip) {
  for (ErrorClass cls :
       {ErrorClass::kOk, ErrorClass::kInvalid, ErrorClass::kResourceExhausted,
        ErrorClass::kTransient, ErrorClass::kShed, ErrorClass::kInternal}) {
    EXPECT_EQ(ErrorClassFromWire(static_cast<uint8_t>(cls)), cls);
  }
  // Unknown future bytes degrade to kInternal, never crash.
  EXPECT_EQ(ErrorClassFromWire(250), ErrorClass::kInternal);
  EXPECT_NE(std::string(ErrorClassName(ErrorClass::kShed)), "");
}

}  // namespace
}  // namespace gsopt
