// Resource-governed optimization: the fallback ladder under a hostile
// query (ISSUE acceptance scenario), plan-cap truncation, row-capped
// execution, and fallback opt-out.
#include <chrono>

#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/budget.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Catalog MakeCatalog(uint64_t seed, int n, int rows = 10) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = rows;
  opt.domain = 6;
  opt.null_fraction = 0.1;
  AddRandomTables(n, opt, &rng, &cat);
  return cat;
}

// Left-deep equi-join chain r1 -x- r2 -x- ... -x- rn.
NodePtr ChainQuery(int n) {
  NodePtr q = Node::Leaf("r1");
  for (int i = 2; i <= n; ++i) {
    std::string prev = "r" + std::to_string(i - 1);
    std::string cur = "r" + std::to_string(i);
    q = Node::Join(q, Node::Leaf(cur),
                   Predicate(MakeAtom(prev, "a", CmpOp::kEq, cur, "a")));
  }
  return q;
}

TEST(BudgetFallbackTest, PathologicalQueryDegradesToValidPlan) {
  // 12-relation chain, exhaustive enumeration (prune off): the unpruned
  // generalized DP is far beyond a 50 ms deadline, so the ladder must
  // descend -- ultimately to the syntactic plan, whose construction needs
  // no search -- and still return an executable plan, promptly.
  constexpr int kRels = 12;
  Catalog cat = MakeCatalog(41, kRels);
  NodePtr q = ChainQuery(kRels);
  QueryOptimizer opt(cat);

  ResourceBudget budget;
  budget.WithDeadlineAfter(std::chrono::milliseconds(50));
  OptimizeOptions oo;
  oo.prune = false;
  oo.mode = EnumMode::kGeneralized;
  oo.budget = &budget;

  auto start = std::chrono::steady_clock::now();
  auto result = opt.Optimize(q, oo);
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Bounded run: generous margin over the 50 ms deadline (the unpruned
  // 12-relation space would take orders of magnitude longer).
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  // The ladder was actually exercised.
  EXPECT_TRUE(result->degradation.degraded())
      << result->degradation.ToString();
  EXPECT_EQ(result->degradation.requested, FallbackRung::kGeneralized);
  EXPECT_NE(result->degradation.rung, FallbackRung::kGeneralized);
  EXPECT_FALSE(result->degradation.attempts.empty());
  EXPECT_NE(result->degradation.ToString().find("requested=generalized"),
            std::string::npos);

  // The degraded plan is valid: executes (fresh budget-free run) and
  // matches the as-written semantics.
  auto got = Execute(result->best.expr, cat);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto ref = Execute(q, cat);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(Relation::BagEquals(*ref, *got));
}

TEST(BudgetFallbackTest, PlanCapTruncatesWithoutDegradingRung) {
  // A tight plan cap (no deadline) stops exploration but never fails: the
  // requested rung still answers, flagged truncated.
  Catalog cat = MakeCatalog(42, 6);
  NodePtr q = ChainQuery(6);
  QueryOptimizer opt(cat);

  ResourceBudget budget;
  budget.WithMaxPlans(8);
  OptimizeOptions oo;
  oo.prune = false;
  oo.budget = &budget;
  auto result = opt.Optimize(q, oo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->degradation.rung, result->degradation.requested);
  EXPECT_TRUE(result->degradation.truncated);
  EXPECT_TRUE(result->degradation.degraded());

  auto eq = ExecutionEquivalent(q, result->best.expr, cat);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);
}

TEST(BudgetFallbackTest, UncappedRunReportsNoDegradation) {
  Catalog cat = MakeCatalog(43, 4);
  NodePtr q = ChainQuery(4);
  QueryOptimizer opt(cat);
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->degradation.degraded());
  EXPECT_EQ(result->degradation.ToString(), "none");
}

TEST(BudgetFallbackTest, FallbackOptOutSurfacesExhaustion) {
  Catalog cat = MakeCatalog(44, 12);
  NodePtr q = ChainQuery(12);
  QueryOptimizer opt(cat);

  ResourceBudget budget;
  budget.WithDeadline(ResourceBudget::Clock::now());  // already expired
  OptimizeOptions oo;
  oo.prune = false;
  oo.budget = &budget;
  oo.fallback = false;
  auto result = opt.Optimize(q, oo);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetFallbackTest, RowCappedExecutionExhausts) {
  // A cartesian-heavy plan against a small row cap: the executor unwinds
  // with kResourceExhausted instead of materializing everything.
  Catalog cat = MakeCatalog(45, 3, /*rows=*/30);
  NodePtr q = ChainQuery(3);
  ResourceBudget budget;
  budget.WithMaxRows(5);
  ExecuteOptions xo;
  xo.budget = &budget;
  auto rel = Execute(q, cat, xo);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kResourceExhausted);

  // The same plan runs to completion without the cap.
  auto ok = Execute(q, cat);
  EXPECT_TRUE(ok.ok());
}

TEST(BudgetFallbackTest, BudgetedExecutionWithinCapMatchesUnbudgeted) {
  Catalog cat = MakeCatalog(46, 3);
  NodePtr q = ChainQuery(3);
  ResourceBudget budget;
  budget.WithMaxRows(1u << 20);
  ExecuteOptions xo;
  xo.budget = &budget;
  auto capped = Execute(q, cat, xo);
  ASSERT_TRUE(capped.ok());
  auto plain = Execute(q, cat);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(Relation::BagEquals(*capped, *plain));
  EXPECT_GT(budget.rows_charged(), 0u);
}

TEST(BudgetFallbackTest, EnumeratorReportsTruncationFlag) {
  // Direct enumerator-level check of the satellite requirement: hitting
  // max_plans sets truncated instead of dropping plans silently or
  // erroring.
  Catalog cat = MakeCatalog(47, 5);
  NodePtr q = ChainQuery(5);
  QueryOptimizer opt(cat);
  OptimizeOptions tight;
  tight.prune = false;
  tight.max_plans = 4;
  auto space = opt.EnumeratePlanSpace(q, tight);
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_TRUE(space->truncated);
  ASSERT_FALSE(space->plans.empty());

  OptimizeOptions loose;
  loose.prune = false;
  auto full = opt.EnumeratePlanSpace(q, loose);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_GT(full->plans.size(), space->plans.size());
}

}  // namespace
}  // namespace gsopt
