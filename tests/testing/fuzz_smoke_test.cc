// Deterministic smoke for the metamorphic fuzz harness (ctest label
// `fuzz`): a fixed seed range must run clean across the whole oracle
// battery with general-class coverage, and the fault-injection self-test
// must drive the failure -> minimize -> artifact path end to end.
#include <gtest/gtest.h>

#include <filesystem>

#include "testing/artifact.h"
#include "testing/fuzz.h"

namespace gsopt {
namespace {

TEST(FuzzSmokeTest, FixedSeedRangeRunsClean) {
  testing::FuzzOptions opt = testing::FuzzOptions::Default();
  auto stats = testing::RunFuzz(/*seed_start=*/1, /*num_seeds=*/60, opt,
                                /*log=*/nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->cases, 60);
  EXPECT_EQ(stats->failures, 0) << stats->Summary();
  EXPECT_EQ(stats->skipped, 0) << stats->Summary();
  EXPECT_GT(stats->plans_checked, 0u);
  // The acceptance gates at 1/10 the CI seed count: general-class shapes
  // must already dominate a short run.
  EXPECT_GE(stats->Pct(stats->with_view), 30.0) << stats->Summary();
  EXPECT_GE(stats->Pct(stats->with_agg_pred), 20.0) << stats->Summary();
  EXPECT_GT(stats->with_outer_join, 0);
  EXPECT_GT(stats->with_complex_pred, 0);
}

TEST(FuzzSmokeTest, CaseGenerationIsDeterministic) {
  testing::FuzzOptions opt = testing::FuzzOptions::Default();
  for (uint64_t seed : {1ull, 7ull, 23ull}) {
    testing::FuzzCase a = testing::MakeFuzzCase(seed, opt);
    testing::FuzzCase b = testing::MakeFuzzCase(seed, opt);
    EXPECT_EQ(a.query->ToString(), b.query->ToString()) << "seed " << seed;
    ASSERT_EQ(a.catalog.TableNames(), b.catalog.TableNames());
    for (const std::string& name : a.catalog.TableNames()) {
      auto ra = a.catalog.Get(name);
      auto rb = b.catalog.Get(name);
      ASSERT_TRUE(ra.ok() && rb.ok());
      EXPECT_TRUE(Relation::BagEquals(*ra, *rb))
          << "seed " << seed << " table " << name;
    }
  }
}

TEST(FuzzSmokeTest, InjectedFaultIsCaughtMinimizedAndWritten) {
  std::string dir = ::testing::TempDir() + "fuzz_smoke_artifacts";
  std::filesystem::remove_all(dir);

  testing::FuzzOptions opt = testing::FuzzOptions::Default();
  opt.artifact_dir = dir;
  opt.max_failures = 2;
  // Corrupt every checked result (never the syntactic baseline): the
  // oracles must fire on essentially every seed.
  opt.oracle.mutate_checked_result = [](Relation* r) {
    if (r->NumRows() > 0) {
      Relation reduced(r->schema(), r->vschema());
      for (int64_t i = 0; i + 1 < r->NumRows(); ++i) reduced.Add(r->row(i));
      *r = std::move(reduced);
    } else {
      r->Add(r->NullTuple());
    }
  };

  auto stats = testing::RunFuzz(/*seed_start=*/1, /*num_seeds=*/20, opt,
                                /*log=*/nullptr);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->failures, 2) << stats->Summary();
  ASSERT_EQ(stats->failure_dirs.size(), 2u);

  // Every artifact is a self-contained reproducer: loadable, re-bindable,
  // and minimized to the acceptance bound of <= 6 relations.
  for (const std::string& repro_dir : stats->failure_dirs) {
    auto loaded = testing::LoadRepro(repro_dir);
    ASSERT_TRUE(loaded.ok()) << repro_dir << ": "
                             << loaded.status().ToString();
    EXPECT_FALSE(loaded->sql.empty());
    ASSERT_NE(loaded->query, nullptr);
    EXPECT_LE(loaded->query->BaseRels().size(), 6u) << repro_dir;
  }

  auto listed = testing::ListReproDirs(dir);
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  EXPECT_EQ(listed->size(), 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gsopt
