// Unit tests for the normalization wrapper calculus: selection and GS
// hoisting across each operator role, group-by crossing (preserved and
// null-supplied sides), opaque-unit fallbacks -- each rule checked for
// semantic preservation by execution.
#include "algebra/normalize.h"

#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "algebra/schema_infer.h"
#include "base/rng.h"
#include "hypergraph/querygraph.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

Catalog MakeCatalog(uint64_t seed, int n) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = 10;
  opt.domain = 3;
  opt.null_fraction = 0.15;
  AddRandomTables(n, opt, &rng, &cat);
  return cat;
}

Predicate P(const std::string& a, const std::string& b) {
  return Predicate(MakeAtom(a, "a", CmpOp::kEq, b, "a"));
}

// Normalize, rebuild via ApplyWrappers, and require equivalence.
void CheckRoundTrip(const NodePtr& q, const Catalog& cat) {
  auto nq = NormalizeForReordering(q, cat);
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  auto rebuilt = ApplyWrappers(*nq, nq->join_tree, cat);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  auto eq = ExecutionEquivalent(q, *rebuilt, cat);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq) << "query: " << q->ToString()
                   << "\nrebuilt: " << (*rebuilt)->ToString();
}

TEST(NormalizeTest, LeafAndFilteredLeafStayInTree) {
  Catalog cat = MakeCatalog(1, 2);
  NodePtr filtered = Node::Select(
      Node::Leaf("r1"), Predicate(MakeConstAtom("r1", "a", CmpOp::kGe, I(1))));
  NodePtr q = Node::Join(filtered, Node::Leaf("r2"), P("r1", "r2"));
  auto nq = NormalizeForReordering(q, cat);
  ASSERT_TRUE(nq.ok());
  EXPECT_TRUE(nq->wrappers.empty());  // filter rides with the leaf
  CheckRoundTrip(q, cat);
}

TEST(NormalizeTest, SelectionHoistsAcrossPreservedSide) {
  Catalog cat = MakeCatalog(2, 2);
  // sigma over a join subtree below the preserved side of a LOJ.
  NodePtr inner = Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                             P("r1", "r2"));
  NodePtr filtered = Node::Select(
      inner, Predicate(MakeConstAtom("r1", "b", CmpOp::kGe, I(1))));
  Catalog cat3 = MakeCatalog(2, 3);
  NodePtr q = Node::LeftOuterJoin(filtered, Node::Leaf("r3"),
                                  P("r2", "r3"));
  auto nq = NormalizeForReordering(q, cat3);
  ASSERT_TRUE(nq.ok());
  ASSERT_EQ(nq->wrappers.size(), 1u);
  EXPECT_TRUE(nq->wrappers[0].groups.empty());  // stays a plain selection
  CheckRoundTrip(q, cat3);
}

TEST(NormalizeTest, SelectionBecomesGsAcrossNullSide) {
  Catalog cat = MakeCatalog(3, 3);
  NodePtr inner = Node::Join(Node::Leaf("r2"), Node::Leaf("r3"),
                             P("r2", "r3"));
  NodePtr filtered = Node::Select(
      inner, Predicate(MakeConstAtom("r2", "b", CmpOp::kGe, I(1))));
  // Filtered subtree on the null-supplying side: must hoist as a GS
  // preserving the other side.
  NodePtr q = Node::LeftOuterJoin(Node::Leaf("r1"), filtered, P("r1", "r2"));
  auto nq = NormalizeForReordering(q, cat);
  ASSERT_TRUE(nq.ok());
  ASSERT_EQ(nq->wrappers.size(), 1u);
  ASSERT_EQ(nq->wrappers[0].groups.size(), 1u);
  EXPECT_EQ(nq->wrappers[0].groups[0].count("r1"), 1u);
  CheckRoundTrip(q, cat);
}

TEST(NormalizeTest, SelectionAcrossFullOuterJoin) {
  Catalog cat = MakeCatalog(4, 3);
  NodePtr inner = Node::Join(Node::Leaf("r2"), Node::Leaf("r3"),
                             P("r2", "r3"));
  NodePtr filtered = Node::Select(
      inner, Predicate(MakeConstAtom("r3", "c", CmpOp::kNe, I(0))));
  NodePtr q = Node::FullOuterJoin(Node::Leaf("r1"), filtered, P("r1", "r2"));
  CheckRoundTrip(q, cat);
}

TEST(NormalizeTest, GroupByPreservedSidePullsThroughLoj) {
  Catalog cat = MakeCatalog(5, 3);
  NodePtr base = Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                            P("r1", "r2"));
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "b"}, Attribute{"r2", "b"}};
  exec::AggSpec agg;
  agg.func = exec::AggFunc::kCount;
  agg.input = Scalar::Column("r1", "c");
  agg.out_rel = "V";
  agg.out_name = "c";
  spec.aggs = {agg};
  NodePtr view = Node::GroupBy(base, spec);
  Predicate p;
  p.AddAtom(MakeAtom("r1", "b", CmpOp::kEq, "r3", "b"));
  p.AddAtom(MakeAtom("r3", "a", CmpOp::kLe, "V", "c"));  // agg-referencing
  NodePtr q = Node::LeftOuterJoin(view, Node::Leaf("r3"), p);

  auto nq = NormalizeForReordering(q, cat);
  ASSERT_TRUE(nq.ok());
  // All three relations reorderable; GP wrapper followed by a GS whose
  // preserved group carries the view side plus the aggregate qualifier.
  EXPECT_EQ(nq->join_tree->BaseRels().size(), 3u);
  bool gs_with_agg_rel = false;
  for (const Wrapper& w : nq->wrappers) {
    if (w.kind == Wrapper::Kind::kGeneralizedSelection) {
      for (const auto& g : w.groups) {
        if (g.count("V")) gs_with_agg_rel = true;
      }
    }
  }
  EXPECT_TRUE(gs_with_agg_rel);
  CheckRoundTrip(q, cat);
}

TEST(NormalizeTest, GroupByNullSideAddsPresenceGuardAndDropColumn) {
  Catalog cat = MakeCatalog(6, 2);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r2", "a"}};
  exec::AggSpec agg;
  agg.func = exec::AggFunc::kCountStar;
  agg.out_rel = "V";
  agg.out_name = "c";
  spec.aggs = {agg};
  NodePtr view = Node::GroupBy(Node::Leaf("r2"), spec);
  Predicate p;
  p.AddAtom(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a"));
  p.AddAtom(MakeAtom("r1", "b", CmpOp::kLt, "V", "c"));
  NodePtr q = Node::LeftOuterJoin(Node::Leaf("r1"), view, p);

  auto nq = NormalizeForReordering(q, cat);
  ASSERT_TRUE(nq.ok());
  EXPECT_FALSE(nq->drop_cols.empty());  // the auxiliary presence count
  bool aux_guard = false;
  for (const Wrapper& w : nq->wrappers) {
    if (w.kind == Wrapper::Kind::kGeneralizedSelection &&
        w.pred.ToString().find("#aux") != std::string::npos) {
      aux_guard = true;
    }
  }
  EXPECT_TRUE(aux_guard);
  CheckRoundTrip(q, cat);
}

TEST(NormalizeTest, FojOverGroupByFallsBackToOpaqueUnit) {
  Catalog cat = MakeCatalog(7, 2);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r2", "a"}};
  exec::AggSpec agg;
  agg.func = exec::AggFunc::kCountStar;
  agg.out_rel = "V";
  agg.out_name = "c";
  spec.aggs = {agg};
  NodePtr view = Node::GroupBy(Node::Leaf("r2"), spec);
  NodePtr q = Node::FullOuterJoin(Node::Leaf("r1"), view, P("r1", "r2"));
  auto nq = NormalizeForReordering(q, cat);
  ASSERT_TRUE(nq.ok());
  EXPECT_TRUE(nq->wrappers.empty());  // view materialized inside the tree
  // The query graph still forms, with the view as a unit.
  auto qg = BuildQueryGraph(nq->join_tree, cat);
  ASSERT_TRUE(qg.ok());
  EXPECT_EQ(qg->hypergraph.NumRelations(), 2);
  CheckRoundTrip(q, cat);
}

TEST(NormalizeTest, TwoGroupBysOneNodeMaterializesOneSide) {
  Catalog cat = MakeCatalog(8, 2);
  auto make_view = [&](const std::string& rel, const std::string& out_rel) {
    exec::GroupBySpec spec;
    spec.group_cols = {Attribute{rel, "a"}};
    exec::AggSpec agg;
    agg.func = exec::AggFunc::kCountStar;
    agg.out_rel = out_rel;
    agg.out_name = "c";
    spec.aggs = {agg};
    return Node::GroupBy(Node::Leaf(rel), spec);
  };
  NodePtr q = Node::Join(make_view("r1", "U"), make_view("r2", "W"),
                         P("r1", "r2"));
  auto nq = NormalizeForReordering(q, cat);
  ASSERT_TRUE(nq.ok());
  CheckRoundTrip(q, cat);
}

TEST(SchemaInferTest, MatchesExecutionSchemas) {
  Catalog cat = MakeCatalog(9, 3);
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "a"}};
  exec::AggSpec agg;
  agg.func = exec::AggFunc::kSum;
  agg.input = Scalar::Column("r1", "b");
  agg.out_rel = "V";
  agg.out_name = "s";
  spec.aggs = {agg};
  for (NodePtr q : {
           Node::Join(Node::Leaf("r1"), Node::Leaf("r2"), P("r1", "r2")),
           Node::FullOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                               P("r1", "r2")),
           Node::GroupBy(Node::Leaf("r1"), spec),
           Node::Project(Node::Leaf("r1"), {Attribute{"r1", "c"}}),
           Node::GeneralizedSelection(
               Node::Join(Node::Leaf("r1"), Node::Leaf("r2"), P("r1", "r2")),
               P("r1", "r2"), {exec::PreservedGroup{"r1"}}),
       }) {
    auto inferred = InferSchema(q, cat);
    auto executed = Execute(q, cat);
    ASSERT_TRUE(inferred.ok()) << q->ToString();
    ASSERT_TRUE(executed.ok());
    EXPECT_EQ(inferred->ToString(), executed->schema().ToString())
        << q->ToString();
  }
}

TEST(SchemaInferTest, ErrorsOnUnknownColumnsAndTables) {
  Catalog cat = MakeCatalog(10, 1);
  EXPECT_FALSE(InferSchema(Node::Leaf("nope"), cat).ok());
  EXPECT_FALSE(
      InferSchema(Node::Project(Node::Leaf("r1"), {Attribute{"r1", "zz"}}),
                  cat)
          .ok());
}

}  // namespace
}  // namespace gsopt
