// Experiments M1/M2 (DESIGN.md): aggregation pull-up with deferred
// aggregate-referencing predicates -- paper §1.1 Query 1, Example 1.1 and
// Example 3.1. Every optimized plan must reproduce the as-written result.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "algebra/normalize.h"
#include "base/rng.h"
#include "core/optimizer.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

// --- Paper §1.1 Query 1 -----------------------------------------------------
//
// View V1: SELECT r1.c AS a, r2.d AS b, c = COUNT(r1.b)
//          FROM r1, r2 WHERE r1.b = r2.b GROUP BY r1.c, r2.d
// Query 1: SELECT ... FROM (V1 LOJ r3 ON r3.b < V1.c), r4
//          WHERE r4.b = V1.b
//
// The LOJ predicate references the COUNT column, so V1 cannot be merged by
// classical rules; pull-up + GS makes all four relations reorderable.

struct Query1 {
  exec::GroupBySpec spec;
  NodePtr query;

  Query1() {
    NodePtr v1_join = Node::Join(Node::Leaf("r1"), Node::Leaf("r2"),
                                 Predicate(MakeAtom("r1", "b", CmpOp::kEq,
                                                    "r2", "b")));
    spec.group_cols = {Attribute{"r1", "c"}, Attribute{"r2", "c"}};
    exec::AggSpec cnt;
    cnt.func = exec::AggFunc::kCount;
    cnt.input = Scalar::Column("r1", "b");
    cnt.out_rel = "V1";
    cnt.out_name = "c";
    spec.aggs = {cnt};
    NodePtr v1 = Node::GroupBy(v1_join, spec);

    // Outer join predicate references the aggregated column V1.c.
    Predicate oj(MakeAtom("r3", "b", CmpOp::kLt, "V1", "c"));
    NodePtr loj = Node::LeftOuterJoin(v1, Node::Leaf("r3"), oj);
    // r4.b = V1.b, where V1.b is r2.d.
    Predicate join_p(MakeAtom("r4", "b", CmpOp::kEq, "r2", "c"));
    query = Node::Join(loj, Node::Leaf("r4"), join_p);
  }
};

Catalog MakeCatalog(uint64_t seed, int n) {
  Catalog cat;
  Rng rng(seed);
  RandomRelationOptions opt;
  opt.num_rows = 9;
  opt.domain = 3;
  opt.null_fraction = 0.1;
  AddRandomTables(n, opt, &rng, &cat);
  return cat;
}

TEST(Query1Test, NormalizationPullsAggregationAboveAllJoins) {
  Query1 q;
  Catalog cat = MakeCatalog(5, 4);
  auto nq = NormalizeForReordering(q.query, cat);
  ASSERT_TRUE(nq.ok()) << nq.status().ToString();
  // The join tree must contain all four base relations as reorderable
  // leaves -- the paper's headline capability for Query 1.
  EXPECT_EQ(nq->join_tree->BaseRels().size(), 4u);
  bool has_gp = false, has_gs = false;
  for (const Wrapper& w : nq->wrappers) {
    if (w.kind == Wrapper::Kind::kGroupBy) has_gp = true;
    if (w.kind == Wrapper::Kind::kGeneralizedSelection && !w.pred.IsTrue()) {
      has_gs = true;
    }
  }
  EXPECT_TRUE(has_gp);
  EXPECT_TRUE(has_gs);
}

TEST(Query1Test, AllPlansEquivalentToAsWritten) {
  Query1 q;
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    Catalog cat = MakeCatalog(seed, 4);
    QueryOptimizer opt(cat);
    OptimizeOptions oo;
    oo.prune = false;  // full plan space
    auto plans = opt.EnumerateFullPlans(q.query, oo);
    ASSERT_TRUE(plans.ok()) << plans.status().ToString();
    EXPECT_GT(plans->size(), 1u);
    auto ref = Execute(q.query, cat);
    ASSERT_TRUE(ref.ok());
    for (const PlanInfo& p : *plans) {
      auto got = Execute(p.expr, cat);
      ASSERT_TRUE(got.ok()) << p.expr->ToString();
      EXPECT_TRUE(Relation::BagEquals(*ref, *got))
          << "seed " << seed << "\nplan: " << p.expr->ToString();
    }
  }
}

TEST(Query1Test, SomePlanJoinsR4BeforeAggregation) {
  // "if predicate r4.b = V1.b is highly filtering then it may be
  // beneficial to perform this join first, before performing the
  // aggregation" -- such plans must exist in the enumerated space.
  Query1 q;
  Catalog cat = MakeCatalog(5, 4);
  QueryOptimizer opt(cat);
  OptimizeOptions oo;
  oo.prune = false;
  auto plans = opt.EnumerateFullPlans(q.query, oo);
  ASSERT_TRUE(plans.ok());
  bool r4_below_gp = false;
  for (const PlanInfo& p : *plans) {
    // Find a GROUPBY node whose subtree already contains r4.
    std::function<bool(const NodePtr&)> visit = [&](const NodePtr& n) {
      if (n == nullptr) return false;
      if (n->kind() == OpKind::kGroupBy &&
          n->BaseRels().count("r4") > 0) {
        return true;
      }
      return (n->left() && visit(n->left())) ||
             (n->right() && visit(n->right()));
    };
    if (visit(p.expr)) r4_below_gp = true;
  }
  EXPECT_TRUE(r4_below_gp);
}

// --- Paper Example 1.1 (suppliers) ------------------------------------------

struct SupplierScenario {
  Catalog cat;
  NodePtr query;

  explicit SupplierScenario(uint64_t seed, int n94 = 12, int n95 = 40,
                            int nsup = 8, double bankrupt_frac = 0.3) {
    Rng rng(seed);
    GSOPT_CHECK(cat.CreateTable("agg94", {"supkey", "partkey", "qty"}).ok());
    GSOPT_CHECK(
        cat.CreateTable("detail95", {"supkey", "partkey", "qty"}).ok());
    GSOPT_CHECK(cat.CreateTable("sup", {"supkey", "rating"}).ok());
    for (int i = 0; i < nsup; ++i) {
      int64_t rating = rng.Bernoulli(bankrupt_frac) ? 0 : 1;  // 0 = BANKRUPT
      GSOPT_CHECK(cat.Insert("sup", {I(i), I(rating)}).ok());
    }
    for (int i = 0; i < n94; ++i) {
      GSOPT_CHECK(cat.Insert("agg94", {I(rng.Uniform(0, nsup - 1)),
                                       I(rng.Uniform(0, 3)),
                                       I(rng.Uniform(1, 20))})
                      .ok());
    }
    for (int i = 0; i < n95; ++i) {
      GSOPT_CHECK(cat.Insert("detail95", {I(rng.Uniform(0, nsup - 1)),
                                          I(rng.Uniform(0, 3)),
                                          I(rng.Uniform(1, 20))})
                      .ok());
    }

    // V2 = agg94 JOIN sup ON supkey, rating = BANKRUPT
    NodePtr v2 = Node::Join(
        Node::Leaf("agg94"),
        Node::Select(Node::Leaf("sup"),
                     Predicate(MakeConstAtom("sup", "rating", CmpOp::kEq,
                                             I(0)))),
        Predicate(MakeAtom("agg94", "supkey", CmpOp::kEq, "sup", "supkey")));
    // V3 = SELECT supkey, partkey, COUNT(*) FROM detail95 GROUP BY ...
    exec::GroupBySpec spec;
    spec.group_cols = {Attribute{"detail95", "supkey"},
                       Attribute{"detail95", "partkey"}};
    exec::AggSpec cnt;
    cnt.func = exec::AggFunc::kCountStar;
    cnt.out_rel = "V3";
    cnt.out_name = "aggqty95";
    spec.aggs = {cnt};
    NodePtr v3 = Node::GroupBy(Node::Leaf("detail95"), spec);

    // V2 LOJ V3 ON supkey=, partkey=, qty < 2 * aggqty95
    Predicate p;
    p.AddAtom(MakeAtom("agg94", "supkey", CmpOp::kEq, "detail95", "supkey"));
    p.AddAtom(MakeAtom("agg94", "partkey", CmpOp::kEq, "detail95", "partkey"));
    Atom agg_atom;
    agg_atom.lhs = Scalar::Column("agg94", "qty");
    agg_atom.op = CmpOp::kLt;
    agg_atom.rhs = Scalar::Arith(ArithOp::kMul, Scalar::Const(I(2)),
                                 Scalar::Column("V3", "aggqty95"));
    p.AddAtom(agg_atom);
    query = Node::LeftOuterJoin(v2, v3, p);
  }
};

TEST(Example11Test, AllPlansEquivalentToAsWritten) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SupplierScenario sc(seed);
    QueryOptimizer opt(sc.cat);
    OptimizeOptions oo;
    oo.prune = false;
    auto plans = opt.EnumerateFullPlans(sc.query, oo);
    ASSERT_TRUE(plans.ok()) << plans.status().ToString();
    auto ref = Execute(sc.query, sc.cat);
    ASSERT_TRUE(ref.ok());
    for (const PlanInfo& p : *plans) {
      auto got = Execute(p.expr, sc.cat);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(Relation::BagEquals(*ref, *got))
          << "seed " << seed << "\nplan: " << p.expr->ToString();
    }
  }
}

TEST(Example11Test, PlanSpaceContainsJoinBeforeAggregation) {
  // The paper's alternative: combine 94AGG/SUP_DETAIL with 95DETAIL before
  // aggregating 95DETAIL.
  SupplierScenario sc(1);
  QueryOptimizer opt(sc.cat);
  OptimizeOptions oo;
  oo.prune = false;
  auto plans = opt.EnumerateFullPlans(sc.query, oo);
  ASSERT_TRUE(plans.ok());
  bool join_before_agg = false;
  for (const PlanInfo& p : *plans) {
    std::function<bool(const NodePtr&)> visit = [&](const NodePtr& n) {
      if (n == nullptr) return false;
      if (n->kind() == OpKind::kGroupBy && n->BaseRels().count("agg94") > 0 &&
          n->BaseRels().count("detail95") > 0) {
        return true;
      }
      return (n->left() && visit(n->left())) ||
             (n->right() && visit(n->right()));
    };
    if (visit(p.expr)) join_before_agg = true;
  }
  EXPECT_TRUE(join_before_agg);
}

TEST(Example11Test, OptimizerPicksCheaperPlanWhenFilterIsSelective) {
  // Few bankrupt suppliers => tiny V2 => joining before aggregating the
  // large detail table should win in estimated cost.
  SupplierScenario sc(9, /*n94=*/6, /*n95=*/400, /*nsup=*/40,
                      /*bankrupt_frac=*/0.05);
  QueryOptimizer opt(sc.cat);
  auto result = opt.Optimize(sc.query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->best.cost, result->original_cost);
  auto ref = Execute(sc.query, sc.cat);
  auto got = Execute(result->best.expr, sc.cat);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(Relation::BagEquals(*ref, *got));
}

// --- Example 3.1 shape -------------------------------------------------------

TEST(Example31Test, AggregationBelowComplexOuterJoinReorders) {
  // r = GP(r1 LOJ r2) LOJ_{p13 ^ p23} r3 with p13 referencing COUNT.
  Catalog cat = MakeCatalog(11, 3);
  NodePtr inner = Node::LeftOuterJoin(
      Node::Leaf("r1"), Node::Leaf("r2"),
      Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")));
  exec::GroupBySpec spec;
  spec.group_cols = {Attribute{"r1", "b"}, Attribute{"r2", "c"}};
  exec::AggSpec cnt;
  cnt.func = exec::AggFunc::kCount;
  cnt.input = Scalar::Column("r1", "a");
  cnt.out_rel = "V";
  cnt.out_name = "c";
  spec.aggs = {cnt};
  NodePtr gp = Node::GroupBy(inner, spec);
  Predicate p;
  p.AddAtom(MakeAtom("r3", "b", CmpOp::kLe, "V", "c"));   // p13 (agg ref)
  p.AddAtom(MakeAtom("r2", "c", CmpOp::kEq, "r3", "c"));  // p23
  NodePtr query = Node::LeftOuterJoin(gp, Node::Leaf("r3"), p);

  QueryOptimizer opt(cat);
  OptimizeOptions oo;
  oo.prune = false;
  auto plans = opt.EnumerateFullPlans(query, oo);
  ASSERT_TRUE(plans.ok()) << plans.status().ToString();
  EXPECT_GT(plans->size(), 1u);
  auto ref = Execute(query, cat);
  ASSERT_TRUE(ref.ok());
  for (const PlanInfo& pi : *plans) {
    auto got = Execute(pi.expr, cat);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(Relation::BagEquals(*ref, *got)) << pi.expr->ToString();
  }
}

// --- Randomized pull-up property --------------------------------------------

TEST(PullupPropertyTest, RandomAggViewQueriesStayEquivalent) {
  // GP view joined/outer-joined with extra relations under random
  // predicates (mixing group-column and aggregate-column references).
  for (uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    Catalog cat = MakeCatalog(seed, 3);
    NodePtr base = Node::Join(
        Node::Leaf("r1"), Node::Leaf("r2"),
        Predicate(MakeAtom("r1", "a", CmpOp::kEq, "r2", "a")));
    exec::GroupBySpec spec;
    spec.group_cols = {Attribute{"r1", "b"}, Attribute{"r2", "b"}};
    exec::AggSpec agg;
    agg.func = rng.Bernoulli(0.5) ? exec::AggFunc::kCount
                                  : exec::AggFunc::kMax;
    agg.input = Scalar::Column("r1", "c");
    agg.out_rel = "V";
    agg.out_name = "agg";
    spec.aggs = {agg};
    NodePtr view = Node::GroupBy(base, spec);

    Predicate p(MakeAtom("r1", "b", CmpOp::kEq, "r3", "a"));
    if (rng.Bernoulli(0.7)) {
      CmpOp op = rng.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kNe;
      p.AddAtom(MakeAtom("r3", "b", op, "V", "agg"));
    }
    NodePtr query;
    double roll = rng.NextDouble();
    if (roll < 0.4) {
      query = Node::LeftOuterJoin(view, Node::Leaf("r3"), p);
    } else if (roll < 0.7) {
      query = Node::RightOuterJoin(Node::Leaf("r3"), view, p);
    } else {
      query = Node::Join(view, Node::Leaf("r3"), p);
    }

    QueryOptimizer opt(cat);
    OptimizeOptions oo;
    oo.prune = false;
    auto plans = opt.EnumerateFullPlans(query, oo);
    ASSERT_TRUE(plans.ok()) << plans.status().ToString();
    auto ref = Execute(query, cat);
    ASSERT_TRUE(ref.ok());
    for (const PlanInfo& pi : *plans) {
      auto got = Execute(pi.expr, cat);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(Relation::BagEquals(*ref, *got))
          << "seed " << seed << "\nquery: " << query->ToString()
          << "\nplan: " << pi.expr->ToString()
          << "\nexpected:\n" << ref->ToString(16)
          << "\ngot:\n" << got->ToString(16);
    }
  }
}

}  // namespace
}  // namespace gsopt
