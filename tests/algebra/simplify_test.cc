// Outer-join simplification ([BHAR95c] substrate): rule-level unit tests
// plus randomized semantic preservation.
#include "algebra/simplify.h"

#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "enumerate/random_query.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

Predicate P(const std::string& a, const std::string& b) {
  return Predicate(MakeAtom(a, "a", CmpOp::kEq, b, "a"));
}

NodePtr L(const std::string& t) { return Node::Leaf(t); }

TEST(SimplifyTest, JoinAboveLojNullSideDegeneratesLoj) {
  // (r1 ->p12 r2) JOIN_p23 r3 with p23 touching r2: LOJ -> inner join.
  NodePtr q = Node::Join(Node::LeftOuterJoin(L("r1"), L("r2"), P("r1", "r2")),
                         L("r3"), P("r2", "r3"));
  NodePtr s = SimplifyOuterJoins(q);
  EXPECT_EQ(s->left()->kind(), OpKind::kInnerJoin);
  EXPECT_FALSE(IsSimpleQuery(q));
  EXPECT_TRUE(IsSimpleQuery(s));
}

TEST(SimplifyTest, JoinAboveLojPreservedSideKeepsLoj) {
  // p13 touches only the preserved side: the LOJ is NOT redundant.
  NodePtr q = Node::Join(Node::LeftOuterJoin(L("r1"), L("r2"), P("r1", "r2")),
                         L("r3"), P("r1", "r3"));
  NodePtr s = SimplifyOuterJoins(q);
  EXPECT_EQ(s->left()->kind(), OpKind::kLeftOuterJoin);
  EXPECT_TRUE(IsSimpleQuery(q));
}

TEST(SimplifyTest, FojDegeneratesSidewise) {
  // Join above touching only r2 (the FOJ's right side): left-only padded
  // rows die -> FOJ becomes ROJ... wait: rows padded on r2's columns are
  // the LEFT-only rows; their death makes preserving r1 useless -> the
  // FOJ degenerates toward preserving r2? No: predicate references r2, so
  // rows with NULL r2 (left-only) die -> keep LEFT preservation useless ->
  // becomes LOJ preserving... verified against execution in the
  // randomized test; here we pin the expected operator.
  NodePtr q = Node::Join(Node::FullOuterJoin(L("r1"), L("r2"), P("r1", "r2")),
                         L("r3"), P("r2", "r3"));
  NodePtr s = SimplifyOuterJoins(q);
  // Rows with NULL in r2's columns die -> left-only rows die -> right
  // side's preservation remains: ROJ.
  EXPECT_EQ(s->left()->kind(), OpKind::kRightOuterJoin);
}

TEST(SimplifyTest, FojWithBothSidesRejectedBecomesInner) {
  NodePtr q = Node::Join(Node::FullOuterJoin(L("r1"), L("r2"), P("r1", "r2")),
                         L("r3"),
                         Predicate({MakeAtom("r1", "b", CmpOp::kEq, "r3", "b"),
                                    MakeAtom("r2", "b", CmpOp::kEq, "r3",
                                             "b")}));
  NodePtr s = SimplifyOuterJoins(q);
  EXPECT_EQ(s->left()->kind(), OpKind::kInnerJoin);
}

TEST(SimplifyTest, CascadeFojToInnerThroughIntermediateKind) {
  // Select above rejecting both sides: FOJ -> inner in one pass.
  NodePtr q = Node::Select(
      Node::FullOuterJoin(L("r1"), L("r2"), P("r1", "r2")),
      Predicate({MakeConstAtom("r1", "b", CmpOp::kGe, Value::Int(0)),
                 MakeConstAtom("r2", "b", CmpOp::kGe, Value::Int(0))}));
  NodePtr s = SimplifyOuterJoins(q);
  EXPECT_EQ(s->left()->kind(), OpKind::kInnerJoin);
  EXPECT_TRUE(IsSimpleQuery(s));
}

TEST(SimplifyTest, LojPredicateDoesNotRejectItsPreservedSide) {
  // The LOJ's own predicate references r2 below; a nested LOJ inside the
  // PRESERVED side survives (padded rows are kept padded, not dropped).
  NodePtr inner = Node::LeftOuterJoin(L("r1"), L("r2"), P("r1", "r2"));
  NodePtr q = Node::LeftOuterJoin(inner, L("r3"), P("r2", "r3"));
  NodePtr s = SimplifyOuterJoins(q);
  EXPECT_EQ(s, q);  // nothing simplifies
}

TEST(SimplifyTest, IdempotentAndSemanticsPreservingOnRandomQueries) {
  Rng rng(321);
  for (int trial = 0; trial < 60; ++trial) {
    RandomQueryOptions qopt;
    qopt.num_rels = 3 + static_cast<int>(rng.Uniform(0, 2));
    qopt.loj_prob = 0.4;
    qopt.foj_prob = 0.25;
    qopt.extra_atom_prob = 0.5;
    NodePtr q = MakeRandomQuery(qopt, &rng);
    NodePtr s = SimplifyOuterJoins(q);
    EXPECT_TRUE(IsSimpleQuery(s)) << q->ToString();
    Catalog cat;
    RandomRelationOptions ropt;
    ropt.num_rows = 8;
    ropt.domain = 3;
    ropt.null_fraction = 0.15;
    Rng drng(1000 + static_cast<uint64_t>(trial));
    AddRandomTables(qopt.num_rels, ropt, &drng, &cat);
    auto eq = ExecutionEquivalent(q, s, cat);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(*eq) << "raw: " << q->ToString()
                     << "\nsimplified: " << s->ToString();
  }
}

TEST(SimplifyTest, LeavesLeavesAlone) {
  NodePtr leaf = L("r1");
  EXPECT_EQ(SimplifyOuterJoins(leaf), leaf);
}

}  // namespace
}  // namespace gsopt
