// EXPLAIN ANALYZE and the stats tree on the paper's Example 2.1 query
// T1 = (r1 LOJ_p12 r2) LOJ_{p13 ^ p23} r3: the interpreter mirrors the
// plan with an OperatorStats tree (labels, wall time, actual rows), the
// cost model's estimates are joined in, and the rendering reports
// est/rows/q per operator plus a q-error summary.
#include <chrono>

#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "algebra/explain.h"
#include "core/optimizer.h"
#include "exec/stats.h"

namespace gsopt {
namespace {

Value I(int64_t v) { return Value::Int(v); }

// Example 2.1 schema: r1(a,b,c,f), r2(c,d,e), r3(e,f).
Catalog Example21Catalog() {
  Catalog cat;
  EXPECT_TRUE(cat.CreateTable("r1", {"a", "b", "c", "f"}).ok());
  EXPECT_TRUE(cat.CreateTable("r2", {"c", "d", "e"}).ok());
  EXPECT_TRUE(cat.CreateTable("r3", {"e", "f"}).ok());
  EXPECT_TRUE(cat.Insert("r1", {I(1), I(2), I(10), I(50)}).ok());
  EXPECT_TRUE(cat.Insert("r1", {I(3), I(4), I(11), I(51)}).ok());
  EXPECT_TRUE(cat.Insert("r1", {I(5), I(6), I(12), I(52)}).ok());
  EXPECT_TRUE(cat.Insert("r2", {I(10), I(7), I(20)}).ok());
  EXPECT_TRUE(cat.Insert("r2", {I(11), I(8), I(21)}).ok());
  EXPECT_TRUE(cat.Insert("r3", {I(20), I(50)}).ok());
  EXPECT_TRUE(cat.Insert("r3", {I(21), I(99)}).ok());
  return cat;
}

NodePtr Example21Query() {
  Predicate p12(MakeAtom("r1", "c", CmpOp::kEq, "r2", "c"));
  Predicate p13(MakeAtom("r1", "f", CmpOp::kEq, "r3", "f"));
  Predicate p23(MakeAtom("r2", "e", CmpOp::kEq, "r3", "e"));
  NodePtr inner = Node::LeftOuterJoin(Node::Leaf("r1"), Node::Leaf("r2"),
                                      p12);
  return Node::LeftOuterJoin(inner, Node::Leaf("r3"),
                             Predicate::And(p13, p23));
}

TEST(ExecuteStatsTest, InterpreterMirrorsPlanTree) {
  Catalog cat = Example21Catalog();
  NodePtr q = Example21Query();
  exec::OperatorStats stats;
  ExecuteOptions xo;
  xo.stats = &stats;
  auto rel = Execute(q, cat, xo);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();

  // Tree shape mirrors the plan: LOJ(LOJ(scan r1, scan r2), scan r3).
  EXPECT_EQ(stats.op, "LOJ");
  ASSERT_EQ(stats.children.size(), 2u);
  const exec::OperatorStats& inner = *stats.children[0];
  const exec::OperatorStats& r3 = *stats.children[1];
  EXPECT_EQ(inner.op, "LOJ");
  EXPECT_EQ(r3.op, "scan r3");
  ASSERT_EQ(inner.children.size(), 2u);
  EXPECT_EQ(inner.children[0]->op, "scan r1");
  EXPECT_EQ(inner.children[1]->op, "scan r2");

  // Leaf actuals are the table cardinalities; the root produced the query
  // answer (left join preserves all 3 r1 rows).
  EXPECT_EQ(inner.children[0]->rows_out, 3u);
  EXPECT_EQ(inner.children[1]->rows_out, 2u);
  EXPECT_EQ(r3.rows_out, 2u);
  EXPECT_EQ(stats.rows_out, static_cast<uint64_t>(rel->NumRows()));

  // The joins consumed both sides and went down the hash path.
  EXPECT_EQ(inner.rows_in, 5u);
  EXPECT_TRUE(inner.hash_path);
  EXPECT_EQ(inner.build_rows, 2u);
  EXPECT_EQ(inner.probe_rows, 3u);

  // The interpreter timed every operator; children nest within parents.
  EXPECT_GT(stats.wall.count(), 0);
  EXPECT_GE(stats.wall, inner.wall);
  EXPECT_GE(stats.SelfWall().count(), 0);
}

TEST(ExecuteStatsTest, QErrorClampsAndSignalsMissingEstimate) {
  exec::OperatorStats s;
  EXPECT_EQ(s.QError(), 0.0);  // no estimate joined in
  s.est_rows = 10.0;
  s.rows_out = 5;
  EXPECT_DOUBLE_EQ(s.QError(), 2.0);
  s.rows_out = 40;
  EXPECT_DOUBLE_EQ(s.QError(), 4.0);
  s.rows_out = 0;  // empty actual stays finite (clamped to 1)
  EXPECT_DOUBLE_EQ(s.QError(), 10.0);
}

TEST(ExplainAnalyzeTest, Example21ShowsActualsEstimatesAndQError) {
  Catalog cat = Example21Catalog();
  NodePtr q = Example21Query();
  QueryOptimizer opt(cat);
  auto analyzed = ExplainAnalyze(q, cat, opt.cost_model());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();

  // The answer rides along (3 preserved r1 rows).
  EXPECT_EQ(analyzed->result.NumRows(), 3);
  ASSERT_NE(analyzed->stats, nullptr);

  // Every operator line carries est / actual rows / q / time, the joins
  // expose their hash counters, and a q-error summary closes the report.
  const std::string& text = analyzed->text;
  EXPECT_NE(text.find("LOJ"), std::string::npos) << text;
  EXPECT_NE(text.find("scan r1"), std::string::npos) << text;
  EXPECT_NE(text.find("est="), std::string::npos) << text;
  EXPECT_NE(text.find("rows="), std::string::npos) << text;
  EXPECT_NE(text.find("q="), std::string::npos) << text;
  EXPECT_NE(text.find("time="), std::string::npos) << text;
  EXPECT_NE(text.find("hash{"), std::string::npos) << text;
  EXPECT_NE(text.find("q-error over"), std::string::npos) << text;

  // Estimates were joined into the tree: every operator got one, so
  // CollectQErrors sees all 5 nodes with finite q >= 1.
  std::vector<double> qs;
  exec::CollectQErrors(*analyzed->stats, &qs);
  EXPECT_EQ(qs.size(), 5u);
  for (double qe : qs) EXPECT_GE(qe, 1.0);
}

TEST(ExplainAnalyzeTest, HonorsExecuteBudget) {
  Catalog cat = Example21Catalog();
  NodePtr q = Example21Query();
  QueryOptimizer opt(cat);
  ResourceBudget budget;
  budget.WithMaxRows(1);
  ExecuteOptions xo;
  xo.budget = &budget;
  auto analyzed = ExplainAnalyze(q, cat, opt.cost_model(), xo);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_EQ(analyzed.status().code(), StatusCode::kResourceExhausted);
}

TEST(OptimizerCountersTest, OptimizeReportsSearchWork) {
  Catalog cat = Example21Catalog();
  NodePtr q = Example21Query();
  QueryOptimizer opt(cat);
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->counters.subplans_enumerated, 0u);
  EXPECT_GT(result->counters.dp_cells, 0u);
  EXPECT_GT(result->counters.plans_considered, 0u);
  EXPECT_EQ(result->counters.deadline_slack_us, -1);  // no budget set

  const std::string s = result->counters.ToString();
  EXPECT_NE(s.find("subplans="), std::string::npos) << s;
  EXPECT_NE(s.find("dp_cells="), std::string::npos) << s;
  EXPECT_NE(s.find("plans_considered="), std::string::npos) << s;
}

TEST(OptimizerCountersTest, DeadlineSlackReportedUnderBudget) {
  Catalog cat = Example21Catalog();
  NodePtr q = Example21Query();
  QueryOptimizer opt(cat);
  ResourceBudget budget;
  budget.WithDeadlineAfter(std::chrono::seconds(30));
  OptimizeOptions oo;
  oo.budget = &budget;
  auto result = opt.Optimize(q, oo);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->counters.deadline_slack_us, 0);
  EXPECT_NE(result->counters.ToString().find("deadline_slack_us="),
            std::string::npos);
}

}  // namespace
}  // namespace gsopt
