// Experiment I1 (DESIGN.md): the paper's eight predicate-splitting
// identities (§3.1), each verified by execution over randomized relations.
// Identity (k) splits a conjunction p1 ^ p2 off a binary operator and
// re-applies p1 through a generalized selection with specific preserved
// relations.
#include <gtest/gtest.h>

#include "algebra/execute.h"
#include "base/rng.h"
#include "relational/datagen.h"

namespace gsopt {
namespace {

using G = exec::PreservedGroup;

struct IdentityCase {
  uint64_t seed;
};

class IdentitiesTest : public ::testing::TestWithParam<IdentityCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    RandomRelationOptions opt;
    opt.num_rows = 8;
    opt.domain = 3;
    opt.null_fraction = 0.15;
    AddRandomTables(4, opt, &rng, &cat_);
  }

  void ExpectEquivalent(const NodePtr& a, const NodePtr& b) {
    auto eq = ExecutionEquivalent(a, b, cat_);
    ASSERT_TRUE(eq.ok()) << eq.status().ToString();
    EXPECT_TRUE(*eq) << "seed " << GetParam().seed << "\nlhs: "
                     << a->ToString() << "\nrhs: " << b->ToString();
  }

  // Convenience predicates p^1 and p^2 between two relations.
  static Predicate P1(const std::string& a, const std::string& b) {
    return Predicate(MakeAtom(a, "a", CmpOp::kEq, b, "a"));
  }
  static Predicate P2(const std::string& a, const std::string& b) {
    return Predicate(MakeAtom(a, "b", CmpOp::kLe, b, "b"));
  }

  Catalog cat_;
};

NodePtr L(const std::string& t) { return Node::Leaf(t); }

// (1)  r1 ->(p1^p2) r2  ==  GS_{p1}[r1](r1 ->p2 r2)
TEST_P(IdentitiesTest, Identity1LeftOuterJoinSplit) {
  Predicate p1 = P1("r1", "r2"), p2 = P2("r1", "r2");
  NodePtr lhs =
      Node::LeftOuterJoin(L("r1"), L("r2"), Predicate::And(p1, p2));
  NodePtr rhs = Node::GeneralizedSelection(
      Node::LeftOuterJoin(L("r1"), L("r2"), p2), p1, {G{"r1"}});
  ExpectEquivalent(lhs, rhs);
}

// (2)  r1 <->(p1^p2) r2  ==  GS_{p1}[r1, r2](r1 <->p2 r2)
TEST_P(IdentitiesTest, Identity2FullOuterJoinSplit) {
  Predicate p1 = P1("r1", "r2"), p2 = P2("r1", "r2");
  NodePtr lhs =
      Node::FullOuterJoin(L("r1"), L("r2"), Predicate::And(p1, p2));
  NodePtr rhs = Node::GeneralizedSelection(
      Node::FullOuterJoin(L("r1"), L("r2"), p2), p1, {G{"r1"}, G{"r2"}});
  ExpectEquivalent(lhs, rhs);
}

// (3)  (r1 o r2) ->(p13^p23) r3  ==  GS_{p13}[r1r2]((r1 o r2) ->p23 r3)
// for o in {join, LOJ, ROJ, FOJ}.
TEST_P(IdentitiesTest, Identity3ComplexLojSplit) {
  Predicate p12 = P1("r1", "r2");
  Predicate p13 = P2("r1", "r3");
  Predicate p23 = P1("r2", "r3");
  for (OpKind o : {OpKind::kInnerJoin, OpKind::kLeftOuterJoin,
                   OpKind::kRightOuterJoin, OpKind::kFullOuterJoin}) {
    NodePtr base = Node::Binary(o, L("r1"), L("r2"), p12);
    NodePtr lhs =
        Node::LeftOuterJoin(base, L("r3"), Predicate::And(p13, p23));
    NodePtr rhs = Node::GeneralizedSelection(
        Node::LeftOuterJoin(base, L("r3"), p23), p13, {G{"r1", "r2"}});
    ExpectEquivalent(lhs, rhs);
  }
}

// (4)  (r1 o r2) <->(p13^p23) r3 == GS_{p13}[r1r2, r3]((r1 o r2) <->p23 r3)
TEST_P(IdentitiesTest, Identity4ComplexFojSplit) {
  Predicate p12 = P1("r1", "r2");
  Predicate p13 = P2("r1", "r3");
  Predicate p23 = P1("r2", "r3");
  for (OpKind o : {OpKind::kInnerJoin, OpKind::kLeftOuterJoin,
                   OpKind::kFullOuterJoin}) {
    NodePtr base = Node::Binary(o, L("r1"), L("r2"), p12);
    NodePtr lhs =
        Node::FullOuterJoin(base, L("r3"), Predicate::And(p13, p23));
    NodePtr rhs = Node::GeneralizedSelection(
        Node::FullOuterJoin(base, L("r3"), p23), p13,
        {G{"r1", "r2"}, G{"r3"}});
    ExpectEquivalent(lhs, rhs);
  }
}

// (5)  r1 ->p12 (r2 JOIN_(p23^1 ^ p23^2) r3)
//      == GS_{p23^1}[r1](r1 ->p12 (r2 JOIN_{p23^2} r3))
TEST_P(IdentitiesTest, Identity5JoinUnderLojSplit) {
  Predicate p12 = P1("r1", "r2");
  Predicate q1 = P2("r2", "r3");
  Predicate q2 = P1("r2", "r3");
  NodePtr lhs = Node::LeftOuterJoin(
      L("r1"), Node::Join(L("r2"), L("r3"), Predicate::And(q1, q2)), p12);
  NodePtr rhs = Node::GeneralizedSelection(
      Node::LeftOuterJoin(L("r1"), Node::Join(L("r2"), L("r3"), q2), p12),
      q1, {G{"r1"}});
  ExpectEquivalent(lhs, rhs);
}

// (6)  r1 <->p12 (r2 JOIN_(q1^q2) r3)  ==  GS_{q1}[r1](...)
//
// NOTE: the paper prints the preserved set as [r1, r2r3], but executing
// that variant resurrects (NULL, r2, r3) rows for join pairs the original
// inner join ELIMINATED -- an inner join preserves nothing, so only the
// FOJ's far side {r1} needs compensation (the Theorem-1 machinery derives
// exactly this; see EXPERIMENTS.md, experiment I1). The printed form is
// checked below to be inequivalent.
TEST_P(IdentitiesTest, Identity6JoinUnderFojSplit) {
  Predicate p12 = P1("r1", "r2");
  Predicate q1 = P2("r2", "r3");
  Predicate q2 = P1("r2", "r3");
  NodePtr lhs = Node::FullOuterJoin(
      L("r1"), Node::Join(L("r2"), L("r3"), Predicate::And(q1, q2)), p12);
  NodePtr rhs = Node::GeneralizedSelection(
      Node::FullOuterJoin(L("r1"), Node::Join(L("r2"), L("r3"), q2), p12),
      q1, {G{"r1"}});
  ExpectEquivalent(lhs, rhs);
}

TEST_P(IdentitiesTest, Identity6PrintedVariantOverPreserves) {
  // The [r1, r2r3] form from the paper's text: keeps join pairs the
  // original eliminated whenever q1 actually filters matched pairs.
  Predicate p12 = P1("r1", "r2");
  Predicate q1 = P2("r2", "r3");
  Predicate q2 = P1("r2", "r3");
  NodePtr lhs = Node::FullOuterJoin(
      L("r1"), Node::Join(L("r2"), L("r3"), Predicate::And(q1, q2)), p12);
  NodePtr printed = Node::GeneralizedSelection(
      Node::FullOuterJoin(L("r1"), Node::Join(L("r2"), L("r3"), q2), p12),
      q1, {G{"r1"}, G{"r2", "r3"}});
  auto l = Execute(lhs, cat_);
  auto r = Execute(printed, cat_);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  // Never smaller; strictly larger whenever q1 filters any matched pair.
  EXPECT_GE(r->NumRows(), l->NumRows());
}

// (7)  r1 <->p12 (r2 <-(q1^q2) r3) == GS_{q1}[r1, r3](r1 <->p12 (r2 <-q2 r3))
TEST_P(IdentitiesTest, Identity7RojUnderFojSplit) {
  Predicate p12 = P1("r1", "r2");
  Predicate q1 = P2("r2", "r3");
  Predicate q2 = P1("r2", "r3");
  NodePtr lhs = Node::FullOuterJoin(
      L("r1"), Node::RightOuterJoin(L("r2"), L("r3"), Predicate::And(q1, q2)),
      p12);
  NodePtr rhs = Node::GeneralizedSelection(
      Node::FullOuterJoin(L("r1"),
                          Node::RightOuterJoin(L("r2"), L("r3"), q2), p12),
      q1, {G{"r1"}, G{"r3"}});
  ExpectEquivalent(lhs, rhs);
}

// (8)  r1 <->p12 ((r2 JOIN_(q1^q2) r3) <-p24 r4)
//      == GS_{q1}[r1, r4](r1 <->p12 ((r2 JOIN_{q2} r3) <-p24 r4))
TEST_P(IdentitiesTest, Identity8JoinUnderRojUnderFojSplit) {
  Predicate p12 = P1("r1", "r2");
  Predicate q1 = P2("r2", "r3");
  Predicate q2 = P1("r2", "r3");
  Predicate p24 = P2("r2", "r4");
  auto build = [&](const Predicate& join_pred) {
    NodePtr j23 = Node::Join(L("r2"), L("r3"), join_pred);
    NodePtr roj = Node::RightOuterJoin(j23, L("r4"), p24);
    return Node::FullOuterJoin(L("r1"), roj, p12);
  };
  NodePtr lhs = build(Predicate::And(q1, q2));
  NodePtr rhs =
      Node::GeneralizedSelection(build(q2), q1, {G{"r1"}, G{"r4"}});
  ExpectEquivalent(lhs, rhs);
}

// The definitional identities from §2: every join flavour is a GS over the
// cartesian product (non-empty relations).
TEST_P(IdentitiesTest, DefinitionalGsOverProduct) {
  Predicate p = P1("r1", "r2");
  NodePtr prod = Node::Join(L("r1"), L("r2"), Predicate::True());
  ExpectEquivalent(Node::Join(L("r1"), L("r2"), p),
                   Node::GeneralizedSelection(prod, p, {}));
  ExpectEquivalent(Node::LeftOuterJoin(L("r1"), L("r2"), p),
                   Node::GeneralizedSelection(prod, p, {G{"r1"}}));
  ExpectEquivalent(Node::FullOuterJoin(L("r1"), L("r2"), p),
                   Node::GeneralizedSelection(prod, p, {G{"r1"}, G{"r2"}}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdentitiesTest,
                         ::testing::Values(IdentityCase{201}, IdentityCase{202},
                                           IdentityCase{203}, IdentityCase{204},
                                           IdentityCase{205}, IdentityCase{206},
                                           IdentityCase{207},
                                           IdentityCase{208}));

}  // namespace
}  // namespace gsopt
